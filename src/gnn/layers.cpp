#include "gnn/layers.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace adaqp {

LayerNorm::LayerNorm(std::size_t dim) : gamma(1, dim), beta(1, dim) { init(); }

void LayerNorm::init() {
  gamma.value.fill(1.0f);
  beta.value.fill(0.0f);
}

void LayerNorm::forward(const Matrix& in, Matrix& out, Cache& cache) const {
  const std::size_t rows = in.rows(), dim = in.cols();
  ADAQP_CHECK(gamma.value.cols() == dim);
  if (!out.same_shape(in)) out = Matrix(rows, dim);
  if (!cache.normalized.same_shape(in)) cache.normalized = Matrix(rows, dim);
  cache.rstd.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto x = in.row(r);
    double mean = 0.0;
    for (float v : x) mean += v;
    mean /= static_cast<double>(dim);
    double var = 0.0;
    for (float v : x) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim);
    const auto rstd = static_cast<float>(1.0 / std::sqrt(var + epsilon));
    cache.rstd[r] = rstd;
    auto xh = cache.normalized.row(r);
    auto y = out.row(r);
    for (std::size_t c = 0; c < dim; ++c) {
      xh[c] = (x[c] - static_cast<float>(mean)) * rstd;
      y[c] = xh[c] * gamma.value.data()[c] + beta.value.data()[c];
    }
  }
}

void LayerNorm::backward(const Matrix& grad_out, const Cache& cache,
                         Matrix& grad_in) {
  backward(grad_out, cache, grad_in, gamma.grad, beta.grad);
}

void LayerNorm::backward(const Matrix& grad_out, const Cache& cache,
                         Matrix& grad_in, Matrix& dgamma,
                         Matrix& dbeta) const {
  const std::size_t rows = grad_out.rows(), dim = grad_out.cols();
  ADAQP_CHECK(cache.normalized.same_shape(grad_out));
  if (!grad_in.same_shape(grad_out)) grad_in = Matrix(rows, dim);
  if (dgamma.rows() != 1 || dgamma.cols() != dim) dgamma = Matrix(1, dim);
  if (dbeta.rows() != 1 || dbeta.cols() != dim) dbeta = Matrix(1, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto dy = grad_out.row(r);
    const auto xh = cache.normalized.row(r);
    auto dx = grad_in.row(r);
    // dγ += Σ_r dy⊙x̂ ; dβ += Σ_r dy
    double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      dgamma.data()[c] += dy[c] * xh[c];
      dbeta.data()[c] += dy[c];
      const double dxh = static_cast<double>(dy[c]) * gamma.value.data()[c];
      mean_dxhat += dxh;
      mean_dxhat_xhat += dxh * xh[c];
    }
    mean_dxhat /= static_cast<double>(dim);
    mean_dxhat_xhat /= static_cast<double>(dim);
    const float rstd = cache.rstd[r];
    for (std::size_t c = 0; c < dim; ++c) {
      const double dxh = static_cast<double>(dy[c]) * gamma.value.data()[c];
      dx[c] = static_cast<float>(
          rstd * (dxh - mean_dxhat - xh[c] * mean_dxhat_xhat));
    }
  }
}

GnnLayer::GnnLayer(const LayerConfig& config)
    : config_(config),
      weight_(config.in_dim, config.out_dim),
      weight_self_(config.aggregator == Aggregator::kSageMean ? config.in_dim
                                                              : 0,
                   config.aggregator == Aggregator::kSageMean ? config.out_dim
                                                              : 0),
      norm_(config.out_dim) {
  ADAQP_CHECK(config.in_dim > 0 && config.out_dim > 0);
}

void GnnLayer::init_weights(Rng& rng) {
  weight_.value.fill_glorot(rng);
  if (weight_self_.size() > 0) weight_self_.value.fill_glorot(rng);
  norm_.init();
}

void GnnLayer::forward(const DeviceGraph& dev, const Matrix& x_local,
                       Matrix& out, LayerCache& cache, Rng& rng,
                       bool training) const {
  ADAQP_CHECK(x_local.rows() == dev.num_local());
  ADAQP_CHECK(x_local.cols() == config_.in_dim);
  ADAQP_CHECK(out.rows() >= dev.num_owned && out.cols() == config_.out_dim);

  cache.input = x_local;
  if (config_.aggregator != Aggregator::kSageMean) {
    aggregate_forward(dev, config_.aggregator, x_local, cache.agg);
    gemm(cache.agg, weight_.value, cache.pre_norm);
  } else {
    aggregate_forward(dev, Aggregator::kSageMean, x_local, cache.mean_nbr);
    gemm(cache.mean_nbr, weight_.value, cache.pre_norm);
    // Self path uses the owned rows of x.
    Matrix x_owned(dev.num_owned, config_.in_dim);
    for (std::size_t r = 0; r < dev.num_owned; ++r) {
      const auto src = x_local.row(r);
      std::copy(src.begin(), src.end(), x_owned.row(r).begin());
    }
    cache.agg = std::move(x_owned);  // cache owned input for dW_self
    Matrix self_out;
    gemm(cache.agg, weight_self_.value, self_out);
    cache.pre_norm.add_inplace(self_out);
  }

  const Matrix* stage = &cache.pre_norm;
  Matrix post_act;
  if (!config_.is_output) {
    if (config_.layer_norm) {
      norm_.forward(*stage, cache.pre_act, cache.ln);
      stage = &cache.pre_act;
    } else {
      cache.pre_act = *stage;
      stage = &cache.pre_act;
    }
    relu_forward(*stage, post_act);
    Matrix dropped;
    if (training && config_.dropout > 0.0f) {
      dropout_forward(post_act, config_.dropout, rng, dropped,
                      cache.drop_mask);
    } else {
      dropped = post_act;
      cache.drop_mask = Matrix(post_act.rows(), post_act.cols());
      cache.drop_mask.fill(1.0f);
    }
    for (std::size_t r = 0; r < dev.num_owned; ++r) {
      const auto src = dropped.row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin());
    }
  } else {
    for (std::size_t r = 0; r < dev.num_owned; ++r) {
      const auto src = stage->row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin());
    }
  }
}

void GnnLayer::backward(const DeviceGraph& dev, const Matrix& grad_out,
                        const LayerCache& cache, Matrix& grad_x) {
  LayerGrads sink;
  backward(dev, grad_out, cache, grad_x, sink);
  apply_grads(sink);
}

void GnnLayer::apply_grads(const LayerGrads& sink) {
  if (!sink.weight.empty()) weight_.grad.add_inplace(sink.weight);
  if (!sink.weight_self.empty())
    weight_self_.grad.add_inplace(sink.weight_self);
  if (!sink.gamma.empty()) norm_.gamma.grad.add_inplace(sink.gamma);
  if (!sink.beta.empty()) norm_.beta.grad.add_inplace(sink.beta);
}

void GnnLayer::backward(const DeviceGraph& dev, const Matrix& grad_out,
                        const LayerCache& cache, Matrix& grad_x,
                        LayerGrads& sink) const {
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  ADAQP_CHECK(grad_out.cols() == config_.out_dim);
  sink = LayerGrads{};

  // Owned-row slice of the incoming gradient.
  Matrix dh(dev.num_owned, config_.out_dim);
  for (std::size_t r = 0; r < dev.num_owned; ++r) {
    const auto src = grad_out.row(r);
    std::copy(src.begin(), src.end(), dh.row(r).begin());
  }

  Matrix dpre_norm;
  if (!config_.is_output) {
    Matrix dpost_act;
    dropout_backward(dh, cache.drop_mask, dpost_act);
    Matrix dpre_act;
    relu_backward(cache.pre_act, dpost_act, dpre_act);
    if (config_.layer_norm) {
      norm_.backward(dpre_act, cache.ln, dpre_norm, sink.gamma, sink.beta);
    } else {
      dpre_norm = std::move(dpre_act);
    }
  } else {
    dpre_norm = std::move(dh);
  }

  // Dense transform backward.
  Matrix dagg;  // grad wrt aggregated input (num_owned x in_dim)
  if (config_.aggregator != Aggregator::kSageMean) {
    gemm_tn(cache.agg, dpre_norm, sink.weight);
    gemm_nt(dpre_norm, weight_.value, dagg);
    if (grad_x.rows() != dev.num_local() || grad_x.cols() != config_.in_dim)
      grad_x = Matrix(dev.num_local(), config_.in_dim);
    else
      grad_x.set_zero();
    aggregate_backward(dev, config_.aggregator, dagg, grad_x);
  } else {
    // Neighbor path: cache.mean_nbr, weight_; self path: cache.agg (owned
    // input rows), weight_self_.
    gemm_tn(cache.mean_nbr, dpre_norm, sink.weight);
    gemm_tn(cache.agg, dpre_norm, sink.weight_self);

    gemm_nt(dpre_norm, weight_.value, dagg);
    if (grad_x.rows() != dev.num_local() || grad_x.cols() != config_.in_dim)
      grad_x = Matrix(dev.num_local(), config_.in_dim);
    else
      grad_x.set_zero();
    aggregate_backward(dev, Aggregator::kSageMean, dagg, grad_x);
    Matrix dself;
    gemm_nt(dpre_norm, weight_self_.value, dself);
    for (std::size_t r = 0; r < dev.num_owned; ++r) {
      auto dst = grad_x.row(r);
      const auto src = dself.row(r);
      for (std::size_t c = 0; c < config_.in_dim; ++c) dst[c] += src[c];
    }
  }
}

std::vector<Param*> GnnLayer::params() {
  std::vector<Param*> out{&weight_};
  if (weight_self_.size() > 0) out.push_back(&weight_self_);
  if (!config_.is_output && config_.layer_norm) {
    out.push_back(&norm_.gamma);
    out.push_back(&norm_.beta);
  }
  return out;
}

std::vector<const Param*> GnnLayer::params() const {
  auto mutable_params = const_cast<GnnLayer*>(this)->params();
  return {mutable_params.begin(), mutable_params.end()};
}

void GnnLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t GnnLayer::grad_bytes() const {
  std::size_t total = 0;
  for (const Param* p : params()) total += p->size() * sizeof(float);
  return total;
}

}  // namespace adaqp
