// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "gnn/layers.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace adaqp {

LayerNorm::LayerNorm(std::size_t dim) : gamma(1, dim), beta(1, dim) { init(); }

void LayerNorm::init() {
  gamma.value.fill(1.0f);
  beta.value.fill(0.0f);
}

namespace {

/// One LayerNorm row — shared by the full and row-subset forwards so both
/// are bit-identical per row by construction.
inline void layer_norm_row(const Matrix& in, Matrix& out,
                           LayerNorm::Cache& cache, const Matrix& gamma,
                           const Matrix& beta, float epsilon, std::size_t r) {
  const std::size_t dim = in.cols();
  const auto x = in.row(r);
  double mean = 0.0;
  for (float v : x) mean += v;
  mean /= static_cast<double>(dim);
  double var = 0.0;
  for (float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(dim);
  const auto rstd = static_cast<float>(1.0 / std::sqrt(var + epsilon));
  cache.rstd[r] = rstd;
  auto xh = cache.normalized.row(r);
  auto y = out.row(r);
  for (std::size_t c = 0; c < dim; ++c) {
    xh[c] = (x[c] - static_cast<float>(mean)) * rstd;
    y[c] = xh[c] * gamma.data()[c] + beta.data()[c];
  }
}

/// One LayerNorm backward row — shared by the full and row-subset backwards
/// so both are bit-identical per row by construction. dgamma / dbeta
/// accumulate this row's contribution (caller fixes the row order).
inline void layer_norm_backward_row(const Matrix& grad_out,
                                    const LayerNorm::Cache& cache,
                                    Matrix& grad_in, Matrix& dgamma,
                                    Matrix& dbeta, const Matrix& gamma,
                                    std::size_t r) {
  const std::size_t dim = grad_out.cols();
  const auto dy = grad_out.row(r);
  const auto xh = cache.normalized.row(r);
  auto dx = grad_in.row(r);
  // dγ += Σ_r dy⊙x̂ ; dβ += Σ_r dy
  double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
  for (std::size_t c = 0; c < dim; ++c) {
    dgamma.data()[c] += dy[c] * xh[c];
    dbeta.data()[c] += dy[c];
    const double dxh = static_cast<double>(dy[c]) * gamma.data()[c];
    mean_dxhat += dxh;
    mean_dxhat_xhat += dxh * xh[c];
  }
  mean_dxhat /= static_cast<double>(dim);
  mean_dxhat_xhat /= static_cast<double>(dim);
  const float rstd = cache.rstd[r];
  for (std::size_t c = 0; c < dim; ++c) {
    const double dxh = static_cast<double>(dy[c]) * gamma.data()[c];
    dx[c] = static_cast<float>(
        rstd * (dxh - mean_dxhat - xh[c] * mean_dxhat_xhat));
  }
}

}  // namespace

void LayerNorm::forward(const Matrix& in, Matrix& out, Cache& cache) const {
  const std::size_t rows = in.rows(), dim = in.cols();
  ADAQP_CHECK(gamma.value.cols() == dim);
  out.reshape_uninit(rows, dim);  // every row is written below
  cache.normalized.reshape_uninit(rows, dim);
  cache.rstd.resize(rows);  // lint:allow(hot-path-alloc) capacity retained
  for (std::size_t r = 0; r < rows; ++r)
    layer_norm_row(in, out, cache, gamma.value, beta.value, epsilon, r);
}

void LayerNorm::forward_rows(const Matrix& in, Matrix& out, Cache& cache,
                             std::span<const NodeId> rows) const {
  ADAQP_CHECK(gamma.value.cols() == in.cols());
  ADAQP_CHECK(out.same_shape(in));
  ADAQP_CHECK(cache.normalized.same_shape(in));
  ADAQP_CHECK(cache.rstd.size() >= in.rows());
  for (NodeId r : rows)
    layer_norm_row(in, out, cache, gamma.value, beta.value, epsilon, r);
}

void LayerNorm::backward(const Matrix& grad_out, const Cache& cache,
                         Matrix& grad_in) {
  backward(grad_out, cache, grad_in, gamma.grad, beta.grad);
}

void LayerNorm::backward(const Matrix& grad_out, const Cache& cache,
                         Matrix& grad_in, Matrix& dgamma,
                         Matrix& dbeta) const {
  const std::size_t rows = grad_out.rows(), dim = grad_out.cols();
  ADAQP_CHECK(cache.normalized.same_shape(grad_out));
  grad_in.reshape_uninit(rows, dim);  // every row is written below
  if (dgamma.rows() != 1 || dgamma.cols() != dim) dgamma.reshape_zero(1, dim);
  if (dbeta.rows() != 1 || dbeta.cols() != dim) dbeta.reshape_zero(1, dim);
  for (std::size_t r = 0; r < rows; ++r)
    layer_norm_backward_row(grad_out, cache, grad_in, dgamma, dbeta,
                            gamma.value, r);
}

void LayerNorm::backward_rows(const Matrix& grad_out, const Cache& cache,
                              Matrix& grad_in, Matrix& dgamma, Matrix& dbeta,
                              std::span<const NodeId> rows) const {
  const std::size_t dim = grad_out.cols();
  ADAQP_CHECK(cache.normalized.same_shape(grad_out));
  ADAQP_CHECK(grad_in.same_shape(grad_out));
  if (dgamma.rows() != 1 || dgamma.cols() != dim) dgamma.reshape_zero(1, dim);
  if (dbeta.rows() != 1 || dbeta.cols() != dim) dbeta.reshape_zero(1, dim);
  for (NodeId r : rows)
    layer_norm_backward_row(grad_out, cache, grad_in, dgamma, dbeta,
                            gamma.value, r);
}

GnnLayer::GnnLayer(const LayerConfig& config)
    : config_(config),
      weight_(config.in_dim, config.out_dim),
      weight_self_(config.aggregator == Aggregator::kSageMean ? config.in_dim
                                                              : 0,
                   config.aggregator == Aggregator::kSageMean ? config.out_dim
                                                              : 0),
      norm_(config.out_dim) {
  ADAQP_CHECK(config.in_dim > 0 && config.out_dim > 0);
}

void GnnLayer::init_weights(Rng& rng) {
  weight_.value.fill_glorot(rng);
  if (weight_self_.size() > 0) weight_self_.value.fill_glorot(rng);
  norm_.init();
}

void GnnLayer::forward(const DeviceGraph& dev, const Matrix& x_local,
                       Matrix& out, LayerCache& cache, Rng& rng,
                       bool training) const {
  forward_prepare(dev, cache, rng, training);
  std::vector<NodeId> scratch;
  forward_rows(dev, x_local, out, cache, dev.owned_span_or(scratch));
}

void GnnLayer::forward_prepare(const DeviceGraph& dev, LayerCache& cache,
                               Rng& rng, bool training) const {
  const std::size_t owned = dev.num_owned;
  if (!cache.agg_plan.ready)
    cache.agg_plan = build_aggregate_plan(dev, config_.aggregator);
  // Reshape in place: a no-op once shapes are stable, so steady-state epochs
  // never reallocate the cache. Every ensured matrix is (re)written by the
  // forward_rows calls that follow.
  const auto ensure = [](Matrix& m, std::size_t r, std::size_t c) {
    m.reshape_uninit(r, c);
  };
  ensure(cache.agg, owned, config_.in_dim);
  ensure(cache.pre_norm, owned, config_.out_dim);
  if (config_.aggregator == Aggregator::kSageMean) {
    ensure(cache.mean_nbr, owned, config_.in_dim);
    ensure(cache.self_scratch, owned, config_.out_dim);
  }
  if (config_.is_output) return;
  ensure(cache.pre_act, owned, config_.out_dim);
  if (config_.layer_norm) {
    ensure(cache.ln.normalized, owned, config_.out_dim);
    cache.ln.rstd.resize(owned);  // lint:allow(hot-path-alloc) capacity retained
  }
  if (training && config_.dropout > 0.0f) {
    // Row-major over all owned rows: the exact draws dropout_forward makes,
    // so pre-drawing here leaves the device stream bit-identical.
    dropout_mask(owned, config_.out_dim, config_.dropout, rng,
                 cache.drop_mask);
  } else {
    ensure(cache.drop_mask, owned, config_.out_dim);
    cache.drop_mask.fill(1.0f);
  }
}

void GnnLayer::forward_rows(const DeviceGraph& dev, const Matrix& x_local,
                            Matrix& out, LayerCache& cache,
                            std::span<const NodeId> rows) const {
  if (rows.empty()) return;
  ADAQP_CHECK(x_local.rows() == dev.num_local());
  ADAQP_CHECK(x_local.cols() == config_.in_dim);
  ADAQP_CHECK(out.rows() >= dev.num_owned && out.cols() == config_.out_dim);
  ADAQP_CHECK(cache.pre_norm.rows() == dev.num_owned);

  ADAQP_CHECK(cache.agg_plan.ready);  // forward_prepare builds the plan
  if (config_.aggregator != Aggregator::kSageMean) {
    aggregate_forward(dev, cache.agg_plan, x_local, rows, cache.agg);
    gemm_rows(cache.agg, weight_.value, cache.pre_norm, rows);
  } else {
    aggregate_forward(dev, cache.agg_plan, x_local, rows, cache.mean_nbr);
    gemm_rows(cache.mean_nbr, weight_.value, cache.pre_norm, rows);
    // Self path uses the owned rows of x (cached for dW_self).
    for (NodeId v : rows) {
      const auto src = x_local.row(v);
      std::copy(src.begin(), src.end(), cache.agg.row(v).begin());
    }
    gemm_rows(cache.agg, weight_self_.value, cache.self_scratch, rows);
    for (NodeId v : rows) {
      auto dst = cache.pre_norm.row(v);
      const auto src = cache.self_scratch.row(v);
      for (std::size_t c = 0; c < config_.out_dim; ++c) dst[c] += src[c];
    }
  }

  if (!config_.is_output) {
    if (config_.layer_norm) {
      norm_.forward_rows(cache.pre_norm, cache.pre_act, cache.ln, rows);
    } else {
      for (NodeId v : rows) {
        const auto src = cache.pre_norm.row(v);
        std::copy(src.begin(), src.end(), cache.pre_act.row(v).begin());
      }
    }
    // ReLU and the pre-drawn dropout mask, fused row-wise (identical
    // arithmetic to relu_forward + the mask multiply of dropout_forward).
    for (NodeId v : rows) {
      const auto src = cache.pre_act.row(v);
      const auto m = cache.drop_mask.row(v);
      auto dst = out.row(v);
      for (std::size_t c = 0; c < config_.out_dim; ++c) {
        const float a = src[c] > 0.0f ? src[c] : 0.0f;
        dst[c] = a * m[c];
      }
    }
  } else {
    for (NodeId v : rows) {
      const auto src = cache.pre_norm.row(v);
      std::copy(src.begin(), src.end(), out.row(v).begin());
    }
  }
}

void GnnLayer::backward(const DeviceGraph& dev, const Matrix& grad_out,
                        const LayerCache& cache, Matrix& grad_x) {
  LayerGrads sink;
  backward(dev, grad_out, cache, grad_x, sink);
  apply_grads(sink);
}

void GnnLayer::apply_grads(const LayerGrads& sink) {
  if (!sink.weight.empty()) weight_.grad.add_inplace(sink.weight);
  if (!sink.weight_self.empty())
    weight_self_.grad.add_inplace(sink.weight_self);
  if (!sink.gamma.empty()) norm_.gamma.grad.add_inplace(sink.gamma);
  if (!sink.beta.empty()) norm_.beta.grad.add_inplace(sink.beta);
}

void GnnLayer::backward(const DeviceGraph& dev, const Matrix& grad_out,
                        const LayerCache& cache, Matrix& grad_x,
                        LayerGrads& sink) const {
  LayerBackwardScratch scratch;
  backward(dev, grad_out, cache, grad_x, sink, scratch);
}

namespace {

/// Reproduce the old `sink = LayerGrads{}` contract for the members a layer
/// never writes, without per-call churn: deallocate once if a previous user
/// left data behind, then stay empty (so apply_grads skips them).
inline void clear_once(Matrix& m) {
  if (!m.empty()) m = Matrix();
}

}  // namespace

void GnnLayer::backward(const DeviceGraph& dev, const Matrix& grad_out,
                        const LayerCache& cache, Matrix& grad_x,
                        LayerGrads& sink, LayerBackwardScratch& s) const {
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  ADAQP_CHECK(grad_out.cols() == config_.out_dim);
  ADAQP_CHECK(cache.agg_plan.ready);

  // Owned-row slice of the incoming gradient.
  s.dh.reshape_uninit(dev.num_owned, config_.out_dim);
  for (std::size_t r = 0; r < dev.num_owned; ++r) {
    const auto src = grad_out.row(r);
    std::copy(src.begin(), src.end(), s.dh.row(r).begin());
  }

  // Select the LayerNorm-adjoint source by pointer (a move would empty the
  // persistent scratch member and force a reallocation next call).
  const Matrix* dpre_norm = &s.dpre_norm;
  if (!config_.is_output) {
    dropout_backward(s.dh, cache.drop_mask, s.dpost_act);
    relu_backward(cache.pre_act, s.dpost_act, s.dpre_act);
    if (config_.layer_norm) {
      sink.gamma.reshape_zero(1, config_.out_dim);
      sink.beta.reshape_zero(1, config_.out_dim);
      norm_.backward(s.dpre_act, cache.ln, s.dpre_norm, sink.gamma, sink.beta);
    } else {
      clear_once(sink.gamma);
      clear_once(sink.beta);
      dpre_norm = &s.dpre_act;
    }
  } else {
    clear_once(sink.gamma);
    clear_once(sink.beta);
    dpre_norm = &s.dh;
  }

  // Dense transform backward (gemm_tn / gemm_nt overwrite their outputs,
  // reshaping in place).
  if (config_.aggregator != Aggregator::kSageMean) {
    clear_once(sink.weight_self);
    gemm_tn(cache.agg, *dpre_norm, sink.weight);
    gemm_nt(*dpre_norm, weight_.value, s.dagg);
    grad_x.reshape_zero(dev.num_local(), config_.in_dim);
    aggregate_backward(dev, cache.agg_plan, s.dagg, grad_x);
  } else {
    // Neighbor path: cache.mean_nbr, weight_; self path: cache.agg (owned
    // input rows), weight_self_.
    gemm_tn(cache.mean_nbr, *dpre_norm, sink.weight);
    gemm_tn(cache.agg, *dpre_norm, sink.weight_self);

    gemm_nt(*dpre_norm, weight_.value, s.dagg);
    grad_x.reshape_zero(dev.num_local(), config_.in_dim);
    aggregate_backward(dev, cache.agg_plan, s.dagg, grad_x);
    gemm_nt(*dpre_norm, weight_self_.value, s.dself);
    for (std::size_t r = 0; r < dev.num_owned; ++r) {
      auto dst = grad_x.row(r);
      const auto src = s.dself.row(r);
      for (std::size_t c = 0; c < config_.in_dim; ++c) dst[c] += src[c];
    }
  }
}

void GnnLayer::backward_rows(const DeviceGraph& dev, const Matrix& grad_out,
                             const LayerCache& cache, Matrix& grad_x,
                             LayerGrads& sink,
                             std::span<const NodeId> rows) const {
  LayerBackwardScratch scratch;
  backward_rows(dev, grad_out, cache, grad_x, sink, rows, scratch);
}

void GnnLayer::backward_rows(const DeviceGraph& dev, const Matrix& grad_out,
                             const LayerCache& cache, Matrix& grad_x,
                             LayerGrads& sink, std::span<const NodeId> rows,
                             LayerBackwardScratch& s) const {
  ADAQP_CHECK(grad_out.rows() >= dev.num_owned);
  ADAQP_CHECK(grad_out.cols() == config_.out_dim);
  ADAQP_CHECK(grad_x.rows() == dev.num_local());
  ADAQP_CHECK(grad_x.cols() == config_.in_dim);
  ADAQP_CHECK(cache.agg_plan.ready);
  if (rows.empty()) {
    // Old contract: an empty subset contributes nothing. Leave the sink's
    // members empty so apply_grads skips them.
    clear_once(sink.weight);
    clear_once(sink.weight_self);
    clear_once(sink.gamma);
    clear_once(sink.beta);
    return;
  }

  // Epilogue adjoint of the subset rows: the pre-drawn dropout mask and the
  // ReLU gate, fused row-wise (identical arithmetic to dropout_backward +
  // relu_backward), then LayerNorm. Rows outside the subset are left
  // uninitialized — every consumer below reads only the subset's rows.
  s.dpre_norm.reshape_uninit(dev.num_owned, config_.out_dim);
  if (!config_.is_output) {
    s.dpre_act.reshape_uninit(dev.num_owned, config_.out_dim);
    for (NodeId r : rows) {
      const auto dy = grad_out.row(r);
      const auto m = cache.drop_mask.row(r);
      const auto pre = cache.pre_act.row(r);
      auto dst = s.dpre_act.row(r);
      for (std::size_t c = 0; c < config_.out_dim; ++c) {
        const float dpost = dy[c] * m[c];
        dst[c] = pre[c] > 0.0f ? dpost : 0.0f;
      }
    }
    if (config_.layer_norm) {
      sink.gamma.reshape_zero(1, config_.out_dim);
      sink.beta.reshape_zero(1, config_.out_dim);
      norm_.backward_rows(s.dpre_act, cache.ln, s.dpre_norm, sink.gamma,
                          sink.beta, rows);
    } else {
      clear_once(sink.gamma);
      clear_once(sink.beta);
      for (NodeId r : rows) {
        const auto src = s.dpre_act.row(r);
        std::copy(src.begin(), src.end(), s.dpre_norm.row(r).begin());
      }
    }
  } else {
    clear_once(sink.gamma);
    clear_once(sink.beta);
    for (NodeId r : rows) {
      const auto src = grad_out.row(r);
      std::copy(src.begin(), src.end(), s.dpre_norm.row(r).begin());
    }
  }

  // Dense transform backward restricted to the subset. Weight-gradient
  // partials sum the subset's rows in span order; the input-gradient scatter
  // runs the serial per-source kernel, so contributions to a shared
  // destination fold in span order too.
  s.dagg.reshape_uninit(dev.num_owned, config_.in_dim);
  if (config_.aggregator != Aggregator::kSageMean) {
    clear_once(sink.weight_self);
    gemm_tn_rows(cache.agg, s.dpre_norm, sink.weight, rows);
    gemm_nt_rows(s.dpre_norm, weight_.value, s.dagg, rows);
    aggregate_backward(dev, cache.agg_plan, s.dagg, rows, grad_x);
  } else {
    gemm_tn_rows(cache.mean_nbr, s.dpre_norm, sink.weight, rows);
    gemm_tn_rows(cache.agg, s.dpre_norm, sink.weight_self, rows);
    gemm_nt_rows(s.dpre_norm, weight_.value, s.dagg, rows);
    aggregate_backward(dev, cache.agg_plan, s.dagg, rows, grad_x);
    s.dself.reshape_uninit(dev.num_owned, config_.in_dim);
    gemm_nt_rows(s.dpre_norm, weight_self_.value, s.dself, rows);
    for (NodeId r : rows) {
      auto dst = grad_x.row(r);
      const auto src = s.dself.row(r);
      for (std::size_t c = 0; c < config_.in_dim; ++c) dst[c] += src[c];
    }
  }
}

std::vector<Param*> GnnLayer::params() {
  std::vector<Param*> out{&weight_};
  if (weight_self_.size() > 0) out.push_back(&weight_self_);  // lint:allow(hot-path-alloc) setup; trainer caches result
  if (!config_.is_output && config_.layer_norm) {
    out.push_back(&norm_.gamma);  // lint:allow(hot-path-alloc) setup; trainer caches result
    out.push_back(&norm_.beta);  // lint:allow(hot-path-alloc) setup; trainer caches result
  }
  return out;
}

std::vector<const Param*> GnnLayer::params() const {
  auto mutable_params = const_cast<GnnLayer*>(this)->params();
  return {mutable_params.begin(), mutable_params.end()};
}

void GnnLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t GnnLayer::grad_bytes() const {
  std::size_t total = 0;
  for (const Param* p : params()) total += p->size() * sizeof(float);
  return total;
}

}  // namespace adaqp
