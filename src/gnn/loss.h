// Task losses and metrics.
//
// Single-label node classification (Reddit/ogbn-products analogues) uses
// softmax cross-entropy + accuracy; multi-label classification
// (Yelp/AmazonProducts analogues) uses sigmoid BCE-with-logits + micro-F1.
// The paper reports both metrics under the single name "accuracy"; we do the
// same. Gradients are normalized by the *global* number of training nodes so
// distributed training matches centralized training exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace adaqp {

/// Softmax cross-entropy over the rows listed in `rows`.
/// labels[i] is the class of row rows[i]. grad (same shape as logits) gets
/// (softmax - onehot)/normalizer added into the listed rows.
/// Returns the summed loss (caller divides by normalizer if averaging).
double softmax_cross_entropy(const Matrix& logits,
                             std::span<const std::uint32_t> rows,
                             std::span<const std::int32_t> labels,
                             double normalizer, Matrix& grad);

/// Steady-state variant: per-row softmax probabilities live in the
/// caller-provided `prob_scratch` (resized once to the class count), so
/// repeated calls perform no heap allocation. Bit-identical to the overload
/// above.
double softmax_cross_entropy(const Matrix& logits,
                             std::span<const std::uint32_t> rows,
                             std::span<const std::int32_t> labels,
                             double normalizer, Matrix& grad,
                             std::vector<double>& prob_scratch);

/// Sigmoid BCE-with-logits over listed rows against multi-hot targets
/// (targets has one row per listed row, aligned by position).
double bce_with_logits(const Matrix& logits,
                       std::span<const std::uint32_t> rows,
                       const Matrix& targets, double normalizer, Matrix& grad);

/// Fraction of listed rows whose argmax equals the label.
double accuracy(const Matrix& logits, std::span<const std::uint32_t> rows,
                std::span<const std::int32_t> labels);

/// Micro-averaged F1 with a 0.5 sigmoid threshold (logit > 0).
double micro_f1(const Matrix& logits, std::span<const std::uint32_t> rows,
                const Matrix& targets);

}  // namespace adaqp
