// lint:hot-path-file — steady-state epochs run through this TU; every
// allocation below must be warmup/build-time only (docs/ARCHITECTURE.md,
// "Memory subsystem").
#include "gnn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace adaqp {

double softmax_cross_entropy(const Matrix& logits,
                             std::span<const std::uint32_t> rows,
                             std::span<const std::int32_t> labels,
                             double normalizer, Matrix& grad) {
  std::vector<double> prob_scratch;
  return softmax_cross_entropy(logits, rows, labels, normalizer, grad,
                               prob_scratch);
}

double softmax_cross_entropy(const Matrix& logits,
                             std::span<const std::uint32_t> rows,
                             std::span<const std::int32_t> labels,
                             double normalizer, Matrix& grad,
                             std::vector<double>& prob_scratch) {
  ADAQP_CHECK(rows.size() == labels.size());
  ADAQP_CHECK(grad.same_shape(logits));
  ADAQP_CHECK(normalizer > 0.0);
  const std::size_t classes = logits.cols();
  double loss = 0.0;
  prob_scratch.resize(classes);  // lint:allow(hot-path-alloc) scratch capacity retained
  std::vector<double>& p = prob_scratch;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = rows[i];
    ADAQP_CHECK(r < logits.rows());
    const auto z = logits.row(r);
    const auto label = labels[i];
    ADAQP_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) < classes,
                    "label " << label << " outside " << classes << " classes");
    double zmax = z[0];
    for (float v : z) zmax = std::max(zmax, static_cast<double>(v));
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      p[c] = std::exp(static_cast<double>(z[c]) - zmax);
      denom += p[c];
    }
    loss += -(static_cast<double>(z[label]) - zmax - std::log(denom));
    auto g = grad.row(r);
    for (std::size_t c = 0; c < classes; ++c) {
      const double soft = p[c] / denom;
      g[c] += static_cast<float>(
          (soft - (static_cast<std::int32_t>(c) == label ? 1.0 : 0.0)) /
          normalizer);
    }
  }
  return loss;
}

double bce_with_logits(const Matrix& logits,
                       std::span<const std::uint32_t> rows,
                       const Matrix& targets, double normalizer, Matrix& grad) {
  ADAQP_CHECK(targets.rows() == rows.size());
  ADAQP_CHECK(targets.cols() == logits.cols());
  ADAQP_CHECK(grad.same_shape(logits));
  ADAQP_CHECK(normalizer > 0.0);
  const std::size_t classes = logits.cols();
  double loss = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = rows[i];
    ADAQP_CHECK(r < logits.rows());
    const auto z = logits.row(r);
    const auto y = targets.row(i);
    auto g = grad.row(r);
    for (std::size_t c = 0; c < classes; ++c) {
      const double zc = z[c];
      // Numerically stable log(1+exp(z)) - y·z.
      const double softplus =
          zc > 0 ? zc + std::log1p(std::exp(-zc)) : std::log1p(std::exp(zc));
      loss += softplus - static_cast<double>(y[c]) * zc;
      const double sigmoid = 1.0 / (1.0 + std::exp(-zc));
      g[c] += static_cast<float>((sigmoid - y[c]) / normalizer);
    }
  }
  return loss;
}

double accuracy(const Matrix& logits, std::span<const std::uint32_t> rows,
                std::span<const std::int32_t> labels) {
  ADAQP_CHECK(rows.size() == labels.size());
  if (rows.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto z = logits.row(rows[i]);
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c)
      if (z[c] > z[best]) best = c;
    if (static_cast<std::int32_t>(best) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double micro_f1(const Matrix& logits, std::span<const std::uint32_t> rows,
                const Matrix& targets) {
  ADAQP_CHECK(targets.rows() == rows.size());
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto z = logits.row(rows[i]);
    const auto y = targets.row(i);
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const bool pred = z[c] > 0.0f;  // sigmoid(z) > 0.5
      const bool truth = y[c] > 0.5f;
      if (pred && truth) ++tp;
      else if (pred && !truth) ++fp;
      else if (!pred && truth) ++fn;
    }
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
}

}  // namespace adaqp
