// Adam optimizer over a flat parameter list (Kingma & Ba).
//
// The paper trains with Adam, lr 0.01 (Appendix B). Parameters are updated
// identically on every simulated device because gradients are allreduced
// before the step, so a single optimizer instance serves the replicated
// model.
#pragma once

#include <vector>

#include "gnn/layers.h"

namespace adaqp {

class Adam {
 public:
  struct Options {
    float lr = 0.01f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam() : opts_(Options{}) {}
  explicit Adam(const Options& opts) : opts_(opts) {}

  /// One update step over `params` using their .grad fields.
  void step(const std::vector<Param*>& params);

  int iterations() const { return t_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  int t_ = 0;
};

}  // namespace adaqp
