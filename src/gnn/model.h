// Multi-layer GNN model, weight-replicated across simulated devices.
//
// One GnnModel instance holds the single authoritative weight set; per-device
// state (layer inputs/outputs, backward caches) lives in DeviceWork objects
// owned by the trainer. This mirrors data-parallel training where weights
// are identical replicas kept in sync by gradient allreduce.
//
// Gradient fold discipline: concurrent backward passes never touch the
// shared Param gradients directly — they write per-device (and, in the
// full-duplex backward, per-row-subset) LayerGrads sinks, which the trainer
// folds via GnnLayer::apply_grads in a fixed order: ascending device, and
// within a device marginal subset before central. Any schedule that
// respects that fold order produces bit-identical Param.grad (and thus
// bit-identical Adam moments) at any thread count, async mode or kernel
// ISA — see docs/ARCHITECTURE.md, "The determinism contract".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnn/layers.h"

namespace adaqp {

struct ModelConfig {
  Aggregator aggregator = Aggregator::kGcn;
  std::size_t in_dim = 0;
  std::size_t hidden_dim = 256;
  std::size_t out_dim = 0;
  int num_layers = 3;            ///< paper uses 3-layer models
  float dropout = 0.5f;
  bool layer_norm = true;

  std::string name() const {
    switch (aggregator) {
      case Aggregator::kGcn: return "GCN";
      case Aggregator::kSageMean: return "GraphSAGE";
      case Aggregator::kSum: return "GIN-sum";
    }
    return "?";
  }
};

class GnnModel {
 public:
  explicit GnnModel(const ModelConfig& config, Rng& rng);

  const ModelConfig& config() const { return config_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  GnnLayer& layer(int l) { return layers_[l]; }
  const GnnLayer& layer(int l) const { return layers_[l]; }

  /// Input/output dimension of layer l.
  std::size_t layer_in_dim(int l) const { return layers_[l].config().in_dim; }
  std::size_t layer_out_dim(int l) const { return layers_[l].config().out_dim; }

  std::vector<Param*> params();
  void zero_grad();
  /// Scale every parameter gradient by `s` (gradient averaging).
  void scale_grads(float s);
  /// Total gradient bytes (model-gradient allreduce volume).
  std::size_t grad_bytes() const;

  /// Flatten all grads into one matrix per device for allreduce simulation.
  Matrix flatten_grads() const;
  void unflatten_grads(const Matrix& flat);

 private:
  ModelConfig config_;
  std::vector<GnnLayer> layers_;
};

}  // namespace adaqp
