// GNN layers with hand-derived analytic backward passes.
//
// A layer computes, for the owned rows of a device partition:
//   GCN:   h = Drop(ReLU(LN(Agg(x)·W)))                (hidden layers)
//   SAGE:  h = Drop(ReLU(LN(x_self·W_self + Mean(x)·W_nbr)))
// The output layer skips LN/ReLU/Drop and emits raw logits. LayerNorm is the
// affine row-wise variant (paper Appendix B lists LayerNorm as the norm
// function). All caches needed for backward live in a per-device
// LayerCache so one shared weight set can serve any number of devices.
#pragma once

#include <vector>

#include "gnn/aggregate.h"
#include "tensor/matrix.h"

namespace adaqp {

class Rng;

/// A trainable parameter: weight, gradient, Adam moments.
struct Param {
  Matrix value;
  Matrix grad;
  Matrix adam_m;
  Matrix adam_v;

  explicit Param(std::size_t rows = 0, std::size_t cols = 0)
      : value(rows, cols), grad(rows, cols), adam_m(rows, cols),
        adam_v(rows, cols) {}
  std::size_t size() const { return value.size(); }
  void zero_grad() { grad.set_zero(); }
};

/// Row-wise LayerNorm with affine (gamma, beta) parameters.
struct LayerNorm {
  Param gamma;
  Param beta;
  float epsilon = 1e-5f;

  explicit LayerNorm(std::size_t dim = 0);
  void init();

  struct Cache {
    Matrix normalized;        // x̂ rows
    std::vector<float> rstd;  // 1/σ per row
  };

  void forward(const Matrix& in, Matrix& out, Cache& cache) const;
  /// Row-subset forward: normalize only the rows in `rows` of `in` into the
  /// matching rows of `out`/`cache` (which must be pre-sized, e.g. by
  /// GnnLayer::forward_prepare). Per-row arithmetic is identical to
  /// forward(), so disjoint subsets compose bit-exactly and may run
  /// concurrently.
  void forward_rows(const Matrix& in, Matrix& out, Cache& cache,
                    std::span<const NodeId> rows) const;
  /// Accumulates into gamma.grad / beta.grad; writes grad_in.
  void backward(const Matrix& grad_out, const Cache& cache, Matrix& grad_in);
  /// Thread-safe variant: accumulates into caller-owned dgamma / dbeta
  /// (resized to 1 x dim and zeroed when mis-shaped) instead of the shared
  /// parameter gradients.
  void backward(const Matrix& grad_out, const Cache& cache, Matrix& grad_in,
                Matrix& dgamma, Matrix& dbeta) const;
  /// Row-subset backward: the per-row adjoint of `rows` only. grad_in rows
  /// outside the subset are untouched (grad_in must be pre-sized to
  /// grad_out's shape); dgamma / dbeta accumulate the subset's rows in span
  /// order, so per-subset partials folded in a fixed subset order are
  /// deterministic and the full ascending row list reproduces backward()
  /// bit for bit.
  void backward_rows(const Matrix& grad_out, const Cache& cache,
                     Matrix& grad_in, Matrix& dgamma, Matrix& dbeta,
                     std::span<const NodeId> rows) const;
};

struct LayerConfig {
  Aggregator aggregator = Aggregator::kGcn;
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  bool is_output = false;   ///< output layer: no norm/activation/dropout
  bool layer_norm = true;
  float dropout = 0.5f;
};

/// Per-device parameter-gradient contributions of one backward call. The
/// runtime refactor computes these concurrently (one sink per simulated
/// device) and GnnLayer::apply_grads folds them into the shared Param
/// gradients in ascending device order, keeping the reduction deterministic
/// at any thread count. Empty matrices mean "no contribution".
struct LayerGrads {
  Matrix weight;       // dW (neighbor path for SAGE)
  Matrix weight_self;  // SAGE only: dW_self
  Matrix gamma;        // LayerNorm dγ (1 x out_dim)
  Matrix beta;         // LayerNorm dβ (1 x out_dim)
};

/// Per-device forward cache (intermediates needed by backward). All members
/// are pre-sized by GnnLayer::forward_prepare, after which row-subset
/// forward stages fill disjoint row slices concurrently. The aggregation
/// plan is built on the first forward_prepare and reused for every later
/// epoch (device topology and aggregator are fixed per trainer run).
struct LayerCache {
  Matrix agg;          // GCN: Agg(x); SAGE: owned input rows (for dW_self)
  Matrix mean_nbr;     // SAGE only: Mean(x), num_owned x in_dim
  Matrix pre_norm;     // Agg·W (+ self path), num_owned x out_dim
  LayerNorm::Cache ln;
  Matrix pre_act;      // after LN, num_owned x out_dim
  Matrix drop_mask;    // dropout multipliers (pre-drawn by forward_prepare)
  Matrix self_scratch; // SAGE only: x_self·W_self staging
  AggregatePlan agg_plan;  // per-edge coefficients (SIMD kernel path)
};

/// Per-(device, layer) temporaries of one backward call. Persist it across
/// epochs: every member is reshaped in place (reshape_uninit/reshape_zero),
/// so after the first epoch backward passes perform no heap allocation —
/// part of the steady-state contract (docs/ARCHITECTURE.md).
struct LayerBackwardScratch {
  Matrix dh;         // owned-row slice of grad_out (full backward only)
  Matrix dpost_act;  // dropout adjoint staging
  Matrix dpre_act;   // ReLU adjoint staging
  Matrix dpre_norm;  // LayerNorm adjoint staging
  Matrix dagg;       // grad wrt aggregated input
  Matrix dself;      // SAGE only: grad through W_self
};

class GnnLayer {
 public:
  explicit GnnLayer(const LayerConfig& config);

  void init_weights(Rng& rng);

  const LayerConfig& config() const { return config_; }

  /// Compute owned rows of the output into rows [0, num_owned) of `out`
  /// (out is num_local_next x out_dim; halo rows are the *next* exchange's
  /// job and are left untouched). `training` enables dropout. Equivalent to
  /// forward_prepare followed by forward_rows over all owned rows.
  void forward(const DeviceGraph& dev, const Matrix& x_local, Matrix& out,
               LayerCache& cache, Rng& rng, bool training) const;

  /// Pre-size the forward cache and draw the dropout mask for all owned
  /// rows (row-major, exactly the stream consumption of dropout_forward).
  /// This is the only part of the forward that touches the Rng, so after it
  /// returns, forward_rows calls over disjoint row subsets may run
  /// concurrently — the pipeline computes central rows while the halo
  /// exchange is still in flight, then marginal rows after the join.
  void forward_prepare(const DeviceGraph& dev, LayerCache& cache, Rng& rng,
                       bool training) const;

  /// Compute the owned output rows in `rows` (a subset of [0, num_owned))
  /// into `out`. Requires a preceding forward_prepare on `cache`. Central
  /// rows read only owned rows of x_local; marginal rows also read halo
  /// rows, so they must wait for the forward exchange. Each row's
  /// arithmetic is bit-identical to the full forward's.
  void forward_rows(const DeviceGraph& dev, const Matrix& x_local,
                    Matrix& out, LayerCache& cache,
                    std::span<const NodeId> rows) const;

  /// Backward from grad of owned output rows; accumulates weight grads and
  /// writes grad wrt the layer input for *all* local rows into grad_x
  /// (num_local x in_dim, overwritten). Serial convenience form: equivalent
  /// to the sink overload followed by apply_grads.
  void backward(const DeviceGraph& dev, const Matrix& grad_out,
                const LayerCache& cache, Matrix& grad_x);

  /// Thread-safe backward: writes this device's parameter-gradient
  /// contributions into `sink` (overwritten) instead of the shared Param
  /// gradients, so per-device backward passes can run concurrently. Callers
  /// must fold sinks with apply_grads in a fixed device order afterwards.
  void backward(const DeviceGraph& dev, const Matrix& grad_out,
                const LayerCache& cache, Matrix& grad_x,
                LayerGrads& sink) const;

  /// Steady-state variant: identical arithmetic, but all per-call
  /// temporaries live in the caller-provided `scratch` (reshaped in place),
  /// so repeated calls with stable shapes perform no heap allocation.
  void backward(const DeviceGraph& dev, const Matrix& grad_out,
                const LayerCache& cache, Matrix& grad_x, LayerGrads& sink,
                LayerBackwardScratch& scratch) const;

  /// Row-subset backward (the adjoint mirror of forward_rows): epilogue
  /// derivative, weight-gradient partial sums and input-gradient scatter of
  /// the owned rows in `rows` only. Accumulates into grad_x (pre-sized
  /// num_local x in_dim by the caller; NOT zeroed here) and overwrites
  /// `sink` with this subset's partials. Central rows scatter only into
  /// owned rows of grad_x; marginal rows also scatter into halo rows — so
  /// the halo-gradient exchange depends only on the marginal subset, and
  /// central-row backward can run while that exchange is in flight. Subsets
  /// that share destination rows must be ordered (marginal before central in
  /// the trainer's stage graph) and their sinks folded with apply_grads in a
  /// fixed device-then-subset order; then any schedule is bit-identical.
  /// backward_rows over the full owned list reproduces backward() bit for
  /// bit.
  void backward_rows(const DeviceGraph& dev, const Matrix& grad_out,
                     const LayerCache& cache, Matrix& grad_x, LayerGrads& sink,
                     std::span<const NodeId> rows) const;

  /// Steady-state variant of backward_rows (see the backward overload).
  void backward_rows(const DeviceGraph& dev, const Matrix& grad_out,
                     const LayerCache& cache, Matrix& grad_x, LayerGrads& sink,
                     std::span<const NodeId> rows,
                     LayerBackwardScratch& scratch) const;

  /// Fold one device's contributions into the shared parameter gradients.
  void apply_grads(const LayerGrads& sink);

  /// All trainable parameters (for Adam / allreduce).
  std::vector<Param*> params();
  std::vector<const Param*> params() const;

  void zero_grad();

  /// Bytes of all parameter gradients (model-gradient allreduce volume).
  std::size_t grad_bytes() const;

 private:
  LayerConfig config_;
  Param weight_;        // in_dim x out_dim (neighbor path for SAGE)
  Param weight_self_;   // SAGE only: in_dim x out_dim
  LayerNorm norm_;
};

}  // namespace adaqp
