// Synthetic analogues of the paper's benchmark datasets.
//
// The real Reddit / Yelp / ogbn-products / AmazonProducts graphs are
// multi-GB downloads; per DESIGN.md §2 each is replaced by a degree-corrected
// SBM parameterized to preserve what the experiments actually exercise:
//   * relative density ordering  (Reddit ≫ Amazon > products > Yelp),
//   * heavy-tailed degrees       (drives skewed pairwise halo volumes, Fig 2),
//   * task type                  (single-label: Reddit, products;
//                                 multi-label: Yelp, Amazon),
//   * learnable class signal     (features = class centroid + noise over a
//                                 label-aligned planted block structure).
// Node counts are ~1/1000 of the originals so full-graph training runs in
// seconds per epoch on one CPU core.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace adaqp {

class Rng;

struct DatasetSpec {
  std::string name;
  std::size_t num_nodes = 0;
  double avg_degree = 10.0;
  std::size_t feature_dim = 32;
  std::size_t num_classes = 8;
  bool multi_label = false;
  double intra_prob = 0.7;        ///< block assortativity
  double degree_exponent = 2.2;   ///< degree-propensity power law
  double block_size_exponent = 0.0;  ///< community-size heterogeneity
  double feature_noise = 1.0;     ///< σ of per-node feature noise
  double train_fraction = 0.6;
  double val_fraction = 0.2;
};

struct Dataset {
  DatasetSpec spec;
  Graph graph;
  Matrix features;                    ///< n x feature_dim
  std::vector<std::int32_t> labels;   ///< single-label tasks
  Matrix label_matrix;                ///< multi-label tasks: n x classes
  std::vector<std::uint32_t> train_nodes;
  std::vector<std::uint32_t> val_nodes;
  std::vector<std::uint32_t> test_nodes;

  std::size_t num_nodes() const { return graph.num_nodes(); }
  std::size_t num_classes() const { return spec.num_classes; }
};

/// Specs mirroring the paper's Table 3 datasets at simulation scale.
/// Known names: "reddit_sim", "yelp_sim", "products_sim", "amazon_sim".
DatasetSpec dataset_spec(const std::string& name);

/// All four benchmark specs in the paper's presentation order.
std::vector<DatasetSpec> all_benchmark_specs();

/// Materialize a dataset (graph + features + labels + splits).
Dataset make_dataset(const DatasetSpec& spec, Rng& rng);

/// Convenience: spec lookup + generation with a derived seed.
Dataset make_dataset(const std::string& name, std::uint64_t seed);

}  // namespace adaqp
