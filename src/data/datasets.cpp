#include "data/datasets.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace adaqp {

DatasetSpec dataset_spec(const std::string& name) {
  // Densities follow the originals' ordering (average directed degree:
  // Reddit ~492, AmazonProducts ~168, ogbn-products ~25, Yelp ~10), scaled
  // to keep CPU full-graph epochs fast while preserving the ordering and the
  // communication-dominance regime.
  DatasetSpec spec;
  spec.name = name;
  if (name == "reddit_sim") {
    spec.num_nodes = 2400;
    spec.avg_degree = 44.0;
    spec.feature_dim = 64;
    spec.num_classes = 8;
    spec.multi_label = false;
    spec.intra_prob = 0.82;
    spec.block_size_exponent = 0.5;
    spec.feature_noise = 1.9;
  } else if (name == "yelp_sim") {
    spec.num_nodes = 2800;
    spec.avg_degree = 6.0;
    spec.feature_dim = 48;
    spec.num_classes = 12;
    spec.multi_label = true;
    spec.intra_prob = 0.80;
    spec.block_size_exponent = 0.4;
    spec.feature_noise = 2.3;
  } else if (name == "products_sim") {
    spec.num_nodes = 4000;
    spec.avg_degree = 12.0;
    spec.feature_dim = 32;
    spec.num_classes = 10;
    spec.multi_label = false;
    spec.intra_prob = 0.80;
    spec.block_size_exponent = 0.5;
    spec.feature_noise = 2.1;
  } else if (name == "amazon_sim") {
    spec.num_nodes = 3200;
    spec.avg_degree = 26.0;
    spec.feature_dim = 48;
    spec.num_classes = 12;
    spec.multi_label = true;
    spec.intra_prob = 0.78;
    spec.block_size_exponent = 0.8;
    spec.feature_noise = 2.3;
  } else {
    ADAQP_CHECK_MSG(false, "unknown dataset '" << name << "'");
  }
  return spec;
}

std::vector<DatasetSpec> all_benchmark_specs() {
  return {dataset_spec("reddit_sim"), dataset_spec("yelp_sim"),
          dataset_spec("products_sim"), dataset_spec("amazon_sim")};
}

Dataset make_dataset(const DatasetSpec& spec, Rng& rng) {
  ADAQP_CHECK(spec.num_nodes >= 16);
  ADAQP_CHECK(spec.num_classes >= 2);
  Dataset ds;
  ds.spec = spec;

  DcSbmParams sbm;
  sbm.num_nodes = spec.num_nodes;
  sbm.num_blocks = spec.num_classes;
  sbm.avg_degree = spec.avg_degree;
  sbm.intra_prob = spec.intra_prob;
  sbm.degree_exponent = spec.degree_exponent;
  sbm.block_size_exponent = spec.block_size_exponent;
  DcSbm planted = dc_sbm(sbm, rng);
  ds.graph = std::move(planted.graph);

  // Class centroids in feature space; node features = centroid + noise.
  const std::size_t n = spec.num_nodes;
  Matrix centroids(spec.num_classes, spec.feature_dim);
  centroids.fill_normal(rng, 0.0f, 1.0f);
  ds.features = Matrix(n, spec.feature_dim);
  for (std::size_t v = 0; v < n; ++v) {
    const int c = planted.block_of[v];
    const auto mu = centroids.row(c);
    auto x = ds.features.row(v);
    for (std::size_t f = 0; f < spec.feature_dim; ++f)
      x[f] = mu[f] + static_cast<float>(
                         rng.normal(0.0, spec.feature_noise));
  }

  if (!spec.multi_label) {
    ds.labels.resize(n);
    for (std::size_t v = 0; v < n; ++v)
      ds.labels[v] = planted.block_of[v];
  } else {
    // Multi-hot targets: the planted block is always on; each node also
    // switches on the blocks of a few random neighbors, making labels
    // graph-correlated the way business/product categories are.
    ds.label_matrix = Matrix(n, spec.num_classes);
    for (std::size_t v = 0; v < n; ++v) {
      ds.label_matrix.at(v, planted.block_of[v]) = 1.0f;
      for (NodeId u : ds.graph.neighbors(static_cast<NodeId>(v)))
        if (rng.bernoulli(0.15))
          ds.label_matrix.at(v, planted.block_of[u]) = 1.0f;
    }
    // Keep labels[] populated with the primary class for convenience.
    ds.labels.resize(n);
    for (std::size_t v = 0; v < n; ++v)
      ds.labels[v] = planted.block_of[v];
  }

  // Random split (paper uses the datasets' fixed splits; synthetic data has
  // none, so a seeded shuffle is the analogue).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  const auto train_end = static_cast<std::size_t>(spec.train_fraction * n);
  const auto val_end =
      train_end + static_cast<std::size_t>(spec.val_fraction * n);
  ds.train_nodes.assign(order.begin(), order.begin() + train_end);
  ds.val_nodes.assign(order.begin() + train_end, order.begin() + val_end);
  ds.test_nodes.assign(order.begin() + val_end, order.end());
  return ds;
}

Dataset make_dataset(const std::string& name, std::uint64_t seed) {
  Rng rng(seed ^ std::hash<std::string>{}(name));
  return make_dataset(dataset_spec(name), rng);
}

}  // namespace adaqp
