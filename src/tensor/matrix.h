// Dense row-major float matrix — the tensor type for all GNN computation.
//
// The library deliberately avoids a general tensor/autograd framework: full-
// graph GNN training touches a small, fixed set of kernels (GEMM in three
// transposition variants, sparse-dense products, row-wise elementwise ops),
// and each layer provides a hand-derived analytic backward pass that tests
// validate against numerical gradients. Rows correspond to graph nodes and
// columns to feature channels throughout the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace adaqp {

class Rng;

class Matrix {
 public:
  Matrix() = default;
  /// Construct a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  /// Construct from explicit data (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // at() bounds-checks in NDEBUG-off builds; release builds keep the raw
  // indexed access (the GEMM/aggregation hot paths go through data()/row()).
  float& at(std::size_t r, std::size_t c) {
    check_indices(r, c);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    check_indices(r, c);
    return data_[r * cols_ + c];
  }

  /// Mutable / const view of row r.
  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(float value);
  void set_zero() { fill(0.0f); }

  /// Gaussian init with given std (used for weight matrices).
  void fill_normal(Rng& rng, float mean, float stddev);
  /// Uniform init in [lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);
  /// Glorot/Xavier uniform init based on (fan_in, fan_out) = (rows, cols).
  void fill_glorot(Rng& rng);

  /// Frobenius-norm and elementwise reductions.
  double frobenius_norm() const;
  double sum() const;
  float max_abs() const;

  /// this += other (shapes must match).
  void add_inplace(const Matrix& other);
  /// this += alpha * other.
  void axpy_inplace(float alpha, const Matrix& other);
  /// this *= alpha.
  void scale_inplace(float alpha);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Re-shape to rows x cols reusing the retained capacity; contents are
  /// unspecified (stale) and must be fully overwritten by the caller. The
  /// steady-state reshape: allocates only when rows*cols exceeds every
  /// previous size of this matrix.
  void reshape_uninit(std::size_t rows, std::size_t cols);
  /// Re-shape to rows x cols and zero every element (same reuse semantics).
  void reshape_zero(std::size_t rows, std::size_t cols);

 private:
  void check_indices([[maybe_unused]] std::size_t r,
                     [[maybe_unused]] std::size_t c) const {
#ifndef NDEBUG
    ADAQP_CHECK_MSG(r < rows_ && c < cols_,
                    "Matrix::at(" << r << ", " << c << ") out of bounds for "
                                  << rows_ << "x" << cols_);
#endif
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- GEMM variants (C is overwritten) -------------------------------------

/// C = A * B             (m x k) * (k x n)
void gemm(const Matrix& a, const Matrix& b, Matrix& c);
/// Row-subset product: C[r,:] = (A * B)[r,:] for each r in `rows`; other
/// rows of C are untouched. C must be pre-sized to (A.rows x B.cols). Each
/// computed row uses the same tiling and k-ascending accumulation as gemm,
/// so it is bit-identical to the corresponding row of the full product —
/// the property the pipeline's central/marginal forward split rests on.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c,
               std::span<const std::uint32_t> rows);
/// C = A^T * B           (k x m)^T * (k x n)
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c);
/// Row-subset transpose product: C = A[rows]^T * B[rows], i.e. the sum of
/// outer products a[r]^T · b[r] over r in `rows`, accumulated in `rows`
/// order. C is overwritten (resized to A.cols x B.cols). Each element's
/// accumulation order is the order rows appear in the span, so for the full
/// ascending row list this is bit-identical to gemm_tn — and per-subset
/// partial sums folded in a fixed subset order are deterministic at any
/// thread count (the property GnnLayer::backward_rows rests on).
void gemm_tn_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::span<const std::uint32_t> rows);
/// C = A * B^T           (m x k) * (n x k)^T
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);
/// Row-subset product: C[r,:] = (A * B^T)[r,:] for each r in `rows`; other
/// rows of C are untouched. C must be pre-sized to (A.rows x B.rows). Each
/// computed row uses the same (j, k) tiling and k-ascending per-element
/// reduction as gemm_nt, so it is bit-identical to the corresponding row of
/// the full product.
void gemm_nt_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::span<const std::uint32_t> rows);

// ---- Elementwise / rowwise kernels ----------------------------------------

/// out = relu(in); shapes must match.
void relu_forward(const Matrix& in, Matrix& out);
/// grad_in = grad_out ⊙ 1[in > 0].
void relu_backward(const Matrix& in, const Matrix& grad_out, Matrix& grad_in);

/// Draw an inverted-dropout multiplier mask (0 with prob p, else 1/(1-p))
/// for a rows x cols matrix, consuming rng in row-major element order — the
/// exact draws dropout_forward makes. Masks are value-independent, so the
/// pipeline pre-draws them and applies them per row subset without changing
/// the RNG stream.
void dropout_mask(std::size_t rows, std::size_t cols, float p, Rng& rng,
                  Matrix& mask);

/// Inverted dropout: zero each element with prob p and scale survivors by
/// 1/(1-p); `mask` records the applied multiplier for the backward pass.
void dropout_forward(const Matrix& in, float p, Rng& rng, Matrix& out,
                     Matrix& mask);
void dropout_backward(const Matrix& grad_out, const Matrix& mask,
                      Matrix& grad_in);

/// Row max-abs difference between two same-shaped matrices.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace adaqp
