#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel_for.h"
#include "simd/kernels.h"

namespace adaqp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  ADAQP_CHECK_MSG(data_.size() == rows_ * cols_,
                  "data size " << data_.size() << " != " << rows_ * cols_);
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::reshape_uninit(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::reshape_zero(std::size_t rows, std::size_t cols) {
  reshape_uninit(rows, cols);
  fill(0.0f);
}

void Matrix::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& v : data_)
    v = static_cast<float>(rng.normal(mean, stddev));
}

void Matrix::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data_)
    v = static_cast<float>(rng.uniform(lo, hi));
}

void Matrix::fill_glorot(Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_ ? rows_ + cols_ : 1));
  fill_uniform(rng, static_cast<float>(-limit), static_cast<float>(limit));
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double Matrix::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

float Matrix::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

void Matrix::add_inplace(const Matrix& other) {
  ADAQP_CHECK(same_shape(other));
  // axpy with a == 1.0f: 1.0f * x is exactly x, so this matches the old
  // plain addition bit for bit.
  if (!data_.empty())
    simd::kernels().axpy(1.0f, other.data_.data(), data_.data(),
                         data_.size());
}

void Matrix::axpy_inplace(float alpha, const Matrix& other) {
  ADAQP_CHECK(same_shape(other));
  if (!data_.empty())
    simd::kernels().axpy(alpha, other.data_.data(), data_.data(),
                         data_.size());
}

void Matrix::scale_inplace(float alpha) {
  for (auto& v : data_) v *= alpha;
}

// GEMM kernels are cache-blocked over (j, k) tiles and parallelized over
// row bands of C on the runtime's thread pool; the innermost j-loop is the
// src/simd/ axpy microkernel (runtime-dispatched scalar/SSE/AVX2/AVX-512).
// Every element C[i][j] accumulates its k products in ascending-k order
// regardless of tile, band and vector-lane boundaries, and axpy is unfused
// mul-then-add on every ISA, so results are bit-identical for every thread
// count and ISA (and to the previous unblocked ikj kernels). gemm_nt's
// inner loop is a k-reduction per element; vectorizing it would reorder the
// accumulation, so it stays scalar. Adequate for the matrix sizes in this
// library without pulling in a BLAS dependency.
namespace {

constexpr std::size_t kRowGrain = 8;    ///< min C rows per parallel band
constexpr std::size_t kBlockK = 128;    ///< shared-dim tile
constexpr std::size_t kBlockN = 512;    ///< output-column tile

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ADAQP_CHECK_MSG(a.cols() == b.rows(), "gemm: inner dims " << a.cols()
                                                            << " vs " << b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.reshape_zero(m, n);
  const auto axpy = simd::kernels().axpy;
  parallel_for(m, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t jj = 0; jj < n; jj += kBlockN) {
      const std::size_t jhi = std::min(jj + kBlockN, n);
      for (std::size_t pp = 0; pp < k; pp += kBlockK) {
        const std::size_t phi = std::min(pp + kBlockK, k);
        for (std::size_t i = r0; i < r1; ++i) {
          const float* arow = a.data() + i * k;
          float* crow = c.data() + i * n;
          for (std::size_t p = pp; p < phi; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = b.data() + p * n;
            axpy(av, brow + jj, crow + jj, jhi - jj);
          }
        }
      }
    }
  });
}

void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c,
               std::span<const std::uint32_t> rows) {
  ADAQP_CHECK_MSG(a.cols() == b.rows(), "gemm_rows: inner dims "
                                            << a.cols() << " vs " << b.rows());
  ADAQP_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                  "gemm_rows: C must be pre-sized");
  const std::size_t k = a.cols(), n = b.cols();
  // Same (j, k) tiling and per-element k-ascending accumulation as gemm,
  // applied to the selected rows only; bands over `rows` write disjoint C
  // rows, so any thread count is bit-identical to serial.
  const auto axpy = simd::kernels().axpy;
  parallel_for(rows.size(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t idx = r0; idx < r1; ++idx) {
      const std::size_t i = rows[idx];
      ADAQP_CHECK(i < a.rows());
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
      const float* arow = a.data() + i * k;
      for (std::size_t jj = 0; jj < n; jj += kBlockN) {
        const std::size_t jhi = std::min(jj + kBlockN, n);
        for (std::size_t pp = 0; pp < k; pp += kBlockK) {
          const std::size_t phi = std::min(pp + kBlockK, k);
          for (std::size_t p = pp; p < phi; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = b.data() + p * n;
            axpy(av, brow + jj, crow + jj, jhi - jj);
          }
        }
      }
    }
  });
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c) {
  ADAQP_CHECK_MSG(a.rows() == b.rows(),
                  "gemm_tn: shared dim " << a.rows() << " vs " << b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  c.reshape_zero(m, n);
  const auto axpy = simd::kernels().axpy;
  parallel_for(m, kRowGrain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t jj = 0; jj < n; jj += kBlockN) {
      const std::size_t jhi = std::min(jj + kBlockN, n);
      for (std::size_t pp = 0; pp < k; pp += kBlockK) {
        const std::size_t phi = std::min(pp + kBlockK, k);
        for (std::size_t p = pp; p < phi; ++p) {
          const float* arow = a.data() + p * m;
          const float* brow = b.data() + p * n;
          for (std::size_t i = i0; i < i1; ++i) {
            const float av = arow[i];
            if (av == 0.0f) continue;
            axpy(av, brow + jj, c.data() + i * n + jj, jhi - jj);
          }
        }
      }
    }
  });
}

void gemm_tn_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::span<const std::uint32_t> rows) {
  ADAQP_CHECK_MSG(a.rows() == b.rows(),
                  "gemm_tn_rows: shared dim " << a.rows() << " vs "
                                              << b.rows());
  const std::size_t m = a.cols(), n = b.cols();
  c.reshape_zero(m, n);
  for (const std::uint32_t p : rows) ADAQP_CHECK(p < a.rows());
  // Shared-dim iteration follows the span order (no k-tiling: the subset is
  // the tile), so every C element accumulates its products in `rows` order —
  // ascending-p for the full owned list, matching gemm_tn bit for bit.
  const auto axpy = simd::kernels().axpy;
  parallel_for(m, kRowGrain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t jj = 0; jj < n; jj += kBlockN) {
      const std::size_t jhi = std::min(jj + kBlockN, n);
      for (const std::uint32_t p : rows) {
        const float* arow = a.data() + static_cast<std::size_t>(p) * m;
        const float* brow = b.data() + static_cast<std::size_t>(p) * n;
        for (std::size_t i = i0; i < i1; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          axpy(av, brow + jj, c.data() + i * n + jj, jhi - jj);
        }
      }
    }
  });
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  ADAQP_CHECK_MSG(a.cols() == b.cols(),
                  "gemm_nt: shared dim " << a.cols() << " vs " << b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.reshape_zero(m, n);
  parallel_for(m, kRowGrain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t jj = 0; jj < n; jj += kBlockN) {
      const std::size_t jhi = std::min(jj + kBlockN, n);
      for (std::size_t pp = 0; pp < k; pp += kBlockK) {
        const std::size_t phi = std::min(pp + kBlockK, k);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* arow = a.data() + i * k;
          float* crow = c.data() + i * n;
          for (std::size_t j = jj; j < jhi; ++j) {
            const float* brow = b.data() + j * k;
            float acc = crow[j];
            for (std::size_t p = pp; p < phi; ++p) acc += arow[p] * brow[p];
            crow[j] = acc;
          }
        }
      }
    }
  });
}

void gemm_nt_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::span<const std::uint32_t> rows) {
  ADAQP_CHECK_MSG(a.cols() == b.cols(), "gemm_nt_rows: shared dim "
                                            << a.cols() << " vs " << b.cols());
  ADAQP_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.rows(),
                  "gemm_nt_rows: C must be pre-sized");
  const std::size_t k = a.cols(), n = b.rows();
  // Same (j, k) tiling and k-ascending per-element reduction as gemm_nt,
  // applied to the selected rows only; bands over `rows` write disjoint C
  // rows, so any thread count is bit-identical to serial.
  parallel_for(rows.size(), kRowGrain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t idx = r0; idx < r1; ++idx) {
      const std::size_t i = rows[idx];
      ADAQP_CHECK(i < a.rows());
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
      const float* arow = a.data() + i * k;
      for (std::size_t jj = 0; jj < n; jj += kBlockN) {
        const std::size_t jhi = std::min(jj + kBlockN, n);
        for (std::size_t pp = 0; pp < k; pp += kBlockK) {
          const std::size_t phi = std::min(pp + kBlockK, k);
          for (std::size_t j = jj; j < jhi; ++j) {
            const float* brow = b.data() + j * k;
            float acc = crow[j];
            for (std::size_t p = pp; p < phi; ++p) acc += arow[p] * brow[p];
            crow[j] = acc;
          }
        }
      }
    }
  });
}

void relu_forward(const Matrix& in, Matrix& out) {
  out.reshape_uninit(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i)
    out.data()[i] = in.data()[i] > 0.0f ? in.data()[i] : 0.0f;
}

void relu_backward(const Matrix& in, const Matrix& grad_out, Matrix& grad_in) {
  ADAQP_CHECK(in.same_shape(grad_out));
  grad_in.reshape_uninit(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.size(); ++i)
    grad_in.data()[i] = in.data()[i] > 0.0f ? grad_out.data()[i] : 0.0f;
}

void dropout_mask(std::size_t rows, std::size_t cols, float p, Rng& rng,
                  Matrix& mask) {
  ADAQP_CHECK_MSG(p >= 0.0f && p < 1.0f, "dropout p=" << p);
  mask.reshape_uninit(rows, cols);
  if (p == 0.0f) {
    mask.fill(1.0f);
    return;
  }
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask.data()[i] = rng.uniform_float() < p ? 0.0f : keep_scale;
}

void dropout_forward(const Matrix& in, float p, Rng& rng, Matrix& out,
                     Matrix& mask) {
  dropout_mask(in.rows(), in.cols(), p, rng, mask);
  out.reshape_uninit(in.rows(), in.cols());
  if (p == 0.0f) {
    std::copy(in.data(), in.data() + in.size(), out.data());
    return;
  }
  for (std::size_t i = 0; i < in.size(); ++i)
    out.data()[i] = in.data()[i] * mask.data()[i];
}

void dropout_backward(const Matrix& grad_out, const Matrix& mask,
                      Matrix& grad_in) {
  ADAQP_CHECK(grad_out.same_shape(mask));
  grad_in.reshape_uninit(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    grad_in.data()[i] = grad_out.data()[i] * mask.data()[i];
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  ADAQP_CHECK(a.same_shape(b));
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  return m;
}

}  // namespace adaqp
