// SSE4.2 kernels (4-wide). Compiled with -msse4.2 -ffp-contract=off; only
// reached after runtime dispatch confirms the host supports SSE4.2.
//
// Bit-identity with the scalar reference holds because every lane performs
// the same IEEE-754 single-precision op sequence (sub, div, floor, cmp,
// add, min/max) the scalar loop performs per element, and all integer
// packing is exact. Helpers are `static` so this TU contributes no symbols
// another TU could fold with (see kernels.h on the ODR hazard).
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  std::size_t i = 0;
  float l = x[0], h = x[0];
  if (n >= 4) {
    __m128 vlo = _mm_loadu_ps(x);
    __m128 vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m128 v = _mm_loadu_ps(x + i);
      vlo = _mm_min_ps(vlo, v);
      vhi = _mm_max_ps(vhi, v);
    }
    float tl[4], th[4];
    _mm_storeu_ps(tl, vlo);
    _mm_storeu_ps(th, vhi);
    l = tl[0];
    h = th[0];
    for (int k = 1; k < 4; ++k) {
      if (tl[k] < l) l = tl[k];
      if (th[k] > h) h = th[k];
    }
  }
  for (; i < n; ++i) {
    if (x[i] < l) l = x[i];
    if (x[i] > h) h = x[i];
  }
  *lo = l;
  *hi = h;
}

/// Quantize 4 lanes: the scalar per-element op sequence, lane-wise.
inline __m128i quant4(__m128 v, __m128 uu, __m128 vzp, __m128 vs, __m128 vlev,
                      __m128 vone, __m128 vzero) {
  const __m128 xs = _mm_div_ps(_mm_sub_ps(v, vzp), vs);
  const __m128 fl = _mm_floor_ps(xs);
  const __m128 frac = _mm_sub_ps(xs, fl);
  const __m128 bump = _mm_and_ps(_mm_cmplt_ps(uu, frac), vone);
  __m128 r = _mm_add_ps(fl, bump);
  r = _mm_min_ps(_mm_max_ps(r, vzero), vlev);
  return _mm_cvttps_epi32(r);
}

/// Scalar tail of the same sequence (identical IEEE ops, so bit-identical).
inline std::uint32_t quant1(float x, float uu, float zp, float scale,
                            float levels) {
  const float xs = (x - zp) / scale;
  const float fl = __builtin_floorf(xs);
  const float frac = xs - fl;
  float r = fl + (uu < frac ? 1.0f : 0.0f);
  if (r < 0.0f) r = 0.0f;
  if (r > levels) r = levels;
  return static_cast<std::uint32_t>(r);
}

/// Combine a 16-byte staging chunk (one quantized value per byte, already
/// < 2^bits) into packed little-endian-within-byte output. `count` values
/// are valid; the rest of the staging bytes must be zero.
inline std::size_t combine16(int bits, const std::uint8_t* s,
                             std::size_t count, std::uint8_t* out) {
  if (count > 16) __builtin_unreachable();  // s is a 16-byte staging chunk
  // Byte counts are written per case with constants so GCC can bound the
  // staging-buffer accesses (a shared (count*bits+7)/8 trips its analysis).
  switch (bits) {
    case 8:
      std::memcpy(out, s, count);
      return count;
    case 4: {
      const std::size_t nbytes = (count + 1) / 2;
      for (std::size_t j = 0; j < nbytes; ++j)
        out[j] = static_cast<std::uint8_t>(s[2 * j] | (s[2 * j + 1] << 4));
      return nbytes;
    }
    default: {  // 2
      const std::size_t nbytes = (count + 3) / 4;
      for (std::size_t j = 0; j < nbytes; ++j)
        out[j] = static_cast<std::uint8_t>(s[4 * j] | (s[4 * j + 1] << 2) |
                                           (s[4 * j + 2] << 4) |
                                           (s[4 * j + 3] << 6));
      return nbytes;
    }
  }
}

/// Store the low byte of each 32-bit lane of q into s[0..3].
inline void store_low_bytes(__m128i q, std::uint8_t* s) {
  const __m128i pick = _mm_set_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, -1, 12, 8, 4, 0);
  const std::uint32_t packed =
      static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_shuffle_epi8(q, pick)));
  std::memcpy(s, &packed, 4);
}

void quantize_pack(int bits, const float* x, std::size_t n, float zp,
                   float scale, const float* u, std::uint8_t* out) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const __m128 vzp = _mm_set1_ps(zp);
  const __m128 vs = _mm_set1_ps(scale);
  const __m128 vlev = _mm_set1_ps(levels);
  const __m128 vone = _mm_set1_ps(1.0f);
  const __m128 vzero = _mm_setzero_ps();
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    for (int k = 0; k < 4; ++k)
      store_low_bytes(quant4(_mm_loadu_ps(x + i + 4 * k),
                             _mm_loadu_ps(u + i + 4 * k), vzp, vs, vlev, vone,
                             vzero),
                      s + 4 * k);
    out += combine16(bits, s, 16, out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(quant1(x[i + t], u[i + t], zp, scale,
                                              levels));
    combine16(bits, s, rem, out);
  }
}

/// Expand one 16-byte packed chunk into one byte per value in s[0..15].
/// `count` values are valid (count <= 16); reads ceil(count*bits/8) bytes.
/// Full chunks (count == 16) take vector paths; tails fall back to the
/// scalar unpack. Both produce the same bytes — integer ops are exact.
inline std::size_t expand16(int bits, const std::uint8_t* packed,
                            std::size_t count, std::uint8_t* s) {
  if (count > 16) __builtin_unreachable();  // s is a 16-byte staging chunk
  switch (bits) {
    case 8:
      std::memcpy(s, packed, count);
      return count;
    case 4: {
      const std::size_t nbytes = (count + 1) / 2;
      if (count == 16) {
        // 8 packed bytes -> 16 nibbles; interleaving low/high nibble
        // vectors restores the little-endian within-byte value order.
        const __m128i v =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(packed));
        const __m128i lo = _mm_and_si128(v, _mm_set1_epi8(0x0F));
        const __m128i hi =
            _mm_and_si128(_mm_srli_epi16(v, 4), _mm_set1_epi8(0x0F));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(s),
                         _mm_unpacklo_epi8(lo, hi));
        return nbytes;
      }
      for (std::size_t j = 0; j < nbytes; ++j) {
        s[2 * j] = packed[j] & 0x0F;
        s[2 * j + 1] = packed[j] >> 4;
      }
      return nbytes;
    }
    default: {  // 2
      const std::size_t nbytes = (count + 3) / 4;
      if (count == 16) {
        // 4 packed bytes, 4 crumbs each: replicate every byte into 4 lanes,
        // widen to 16 bits, isolate each crumb with its positional mask,
        // and multiply so the crumb lands at bit 6 for a shared >> 6.
        std::uint32_t word;
        std::memcpy(&word, packed, 4);
        const __m128i rep = _mm_shuffle_epi8(
            _mm_cvtsi32_si128(static_cast<int>(word)),
            _mm_set_epi8(3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0));
        const __m128i mask = _mm_set_epi16(0x00C0, 0x0030, 0x000C, 0x0003,
                                           0x00C0, 0x0030, 0x000C, 0x0003);
        const __m128i mult = _mm_set_epi16(1, 4, 16, 64, 1, 4, 16, 64);
        const __m128i zero = _mm_setzero_si128();
        const __m128i lo16 = _mm_srli_epi16(
            _mm_mullo_epi16(
                _mm_and_si128(_mm_unpacklo_epi8(rep, zero), mask), mult),
            6);
        const __m128i hi16 = _mm_srli_epi16(
            _mm_mullo_epi16(
                _mm_and_si128(_mm_unpackhi_epi8(rep, zero), mask), mult),
            6);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(s),
                         _mm_packus_epi16(lo16, hi16));
        return nbytes;
      }
      for (std::size_t j = 0; j < nbytes; ++j) {
        s[4 * j] = packed[j] & 3;
        s[4 * j + 1] = (packed[j] >> 2) & 3;
        s[4 * j + 2] = (packed[j] >> 4) & 3;
        s[4 * j + 3] = (packed[j] >> 6) & 3;
      }
      return nbytes;
    }
  }
}

void unpack_dequant(int bits, const std::uint8_t* packed, std::size_t n,
                    float scale, float zp, float* out) {
  const __m128 vs = _mm_set1_ps(scale);
  const __m128 vzp = _mm_set1_ps(zp);
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, 16, s);
    // cvtepu8_epi32 widens the low 4 bytes; shift the chunk across.
    __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    for (int k = 0; k < 4; ++k) {
      const __m128 qf = _mm_cvtepi32_ps(_mm_cvtepu8_epi32(chunk));
      _mm_storeu_ps(out + i + 4 * k,
                    _mm_add_ps(_mm_mul_ps(qf, vs), vzp));
      chunk = _mm_srli_si128(chunk, 4);
    }
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    expand16(bits, packed, rem, s);
    for (std::size_t t = 0; t < rem; ++t)
      out[i + t] = static_cast<float>(s[t]) * scale + zp;
  }
}

void pack_bits_k(int bits, const std::uint32_t* values, std::size_t n,
                 std::uint8_t* out) {
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    for (int k = 0; k < 4; ++k)
      store_low_bytes(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
                          values + i + 4 * k)),
                      s + 4 * k);
    out += combine16(bits, s, 16, out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(values[i + t]);
    combine16(bits, s, rem, out);
  }
}

void unpack_bits_k(int bits, const std::uint8_t* packed, std::size_t n,
                   std::uint32_t* out) {
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, 16, s);
    __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    for (int k = 0; k < 4; ++k) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4 * k),
                       _mm_cvtepu8_epi32(chunk));
      chunk = _mm_srli_si128(chunk, 4);
    }
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    expand16(bits, packed, rem, s);
    for (std::size_t t = 0; t < rem; ++t) out[i + t] = s[t];
  }
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128 p0 = _mm_mul_ps(va, _mm_loadu_ps(b + j));
    const __m128 p1 = _mm_mul_ps(va, _mm_loadu_ps(b + j + 4));
    _mm_storeu_ps(c + j, _mm_add_ps(_mm_loadu_ps(c + j), p0));
    _mm_storeu_ps(c + j + 4, _mm_add_ps(_mm_loadu_ps(c + j + 4), p1));
  }
  for (; j + 4 <= n; j += 4)
    _mm_storeu_ps(c + j, _mm_add_ps(_mm_loadu_ps(c + j),
                                    _mm_mul_ps(va, _mm_loadu_ps(b + j))));
  for (; j < n; ++j) c[j] += a * b[j];
}

void scale_row(float a, const float* src, float* dst, std::size_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm_storeu_ps(dst + j, _mm_mul_ps(va, _mm_loadu_ps(src + j)));
  for (; j < n; ++j) dst[j] = a * src[j];
}

void ef_fold(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm_storeu_ps(dst + j,
                  _mm_add_ps(_mm_loadu_ps(a + j), _mm_loadu_ps(b + j)));
  for (; j < n; ++j) dst[j] = a[j] + b[j];
}

void ef_residual(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm_storeu_ps(dst + j,
                  _mm_sub_ps(_mm_loadu_ps(a + j), _mm_loadu_ps(b + j)));
  for (; j < n; ++j) dst[j] = a[j] - b[j];
}

void gather_axpy(const float* base, std::size_t stride,
                 const std::uint32_t* idx, const float* coeffs,
                 std::size_t count, float* dst, std::size_t n) {
  for (std::size_t k = 0; k < count; ++k) {
    const float ck = coeffs[k];
    const float* src = base + static_cast<std::size_t>(idx[k]) * stride;
    const __m128 vc = _mm_set1_ps(ck);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4)
      _mm_storeu_ps(dst + j,
                    _mm_add_ps(_mm_loadu_ps(dst + j),
                               _mm_mul_ps(vc, _mm_loadu_ps(src + j))));
    for (; j < n; ++j) dst[j] += ck * src[j];
  }
}

const KernelTable kTable = {
    row_minmax, quantize_pack, unpack_dequant,
    pack_bits_k, unpack_bits_k, axpy,
    scale_row,  ef_fold,       ef_residual,
    gather_axpy,
};

}  // namespace

const KernelTable* sse42_kernels() { return &kTable; }

}  // namespace adaqp::simd

#else  // non-x86: variant not built

#include "simd/kernels.h"

namespace adaqp::simd {
const KernelTable* sse42_kernels() { return nullptr; }
}  // namespace adaqp::simd

#endif
