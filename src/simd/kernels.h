// Kernel table for the runtime-dispatched vector library.
//
// Each entry is a C-style function pointer so per-ISA translation units
// (kernels_scalar.cpp, kernels_sse42.cpp, ...) stay free of shared inline
// code: a TU compiled with -mavx2 must never contribute an inline symbol
// that a non-AVX host could end up executing, so this header is pure
// declarations. kernels() returns the table for active_isa(); entries an
// ISA does not implement are filled from the scalar reference table by the
// registry, so callers never see a null pointer.
//
// Determinism contract (what makes ADAQP_ISA a pure performance knob):
//  - quantize_pack / unpack_dequant / pack_bits / unpack_bits produce
//    byte-identical outputs across ISAs. Quantization arithmetic is the
//    exact IEEE single-precision sequence of the scalar reference —
//    subtract, divide, floor, compare, add, clamp — which every vector ISA
//    reproduces lane-wise; integer packing is exact by nature. FMA
//    contraction is disabled in every kernel TU (no fused multiply-add
//    anywhere), so mul-then-add rounding matches the scalar path.
//  - axpy keeps per-element accumulation order: element j of the output
//    depends only on (a, b[j], c[j]), so the GEMM loops that call it per
//    k-step preserve their k-ascending per-element accumulation and stay
//    bit-identical across ISAs and thread counts.
// Inputs are assumed finite; NaN propagation is unspecified (the scalar
// path would throw from pack-range checks, vector paths clamp).
//
// Adding a kernel:
//   1. Add a function-pointer slot to KernelTable below and state its
//      determinism contract next to it — what must be bit-identical across
//      ISAs, and why it is (accumulation order, unfused mul-add, exact
//      integer packing, ...).
//   2. Implement it in kernels_scalar.cpp — the reference, required; this
//      is the behavior every other ISA must reproduce bit for bit.
//   3. Optionally implement it in any kernels_<isa>.cpp; leave the slot
//      null elsewhere — the registry backfills missing entries from the
//      scalar table, so callers never see a null pointer.
//   4. Wire the slot into dispatch.cpp's merged_table() so the backfill
//      covers it.
//   5. Extend tests/test_simd.cpp's cross-ISA sweep with the new kernel
//      (byte- or bit-identity against scalar on every supported ISA).
// Kernel TUs must stay free of shared inline code (the ODR note above),
// and each TU keeps -ffp-contract=off (see CMakeLists.txt).
#pragma once

#include <cstddef>
#include <cstdint>

namespace adaqp::simd {

struct KernelTable {
  /// Fused min/max scan of x[0..n). Requires n > 0; writes the row minimum
  /// to *lo and maximum to *hi (callers normalize the sign of zero so the
  /// reduction order never leaks into wire metadata).
  void (*row_minmax)(const float* x, std::size_t n, float* lo, float* hi);

  /// Stochastic-round quantize (paper Eqn. 4) fused with bit-packing.
  /// bits in {2,4,8}; scale must be > 0; u[0..n) are pre-drawn uniforms in
  /// [0,1) (drawn serially by the caller so the RNG stream is
  /// ISA-independent). Writes ceil(n*bits/8) bytes to `out`, every byte
  /// fully overwritten (trailing pad bits zero).
  void (*quantize_pack)(int bits, const float* x, std::size_t n, float zp,
                        float scale, const float* u, std::uint8_t* out);

  /// Unpack + dequantize (paper Eqn. 5): out[i] = q[i] * scale + zp,
  /// computed as an unfused multiply then add. bits in {2,4,8}; reads
  /// ceil(n*bits/8) bytes from `packed`.
  void (*unpack_dequant)(int bits, const std::uint8_t* packed, std::size_t n,
                         float scale, float zp, float* out);

  /// Pack n values (each already < 2^bits) at 2/4/8 bits per entry,
  /// little-endian within each byte. Writes ceil(n*bits/8) bytes, trailing
  /// pad bits zero. Range validation is the caller's job.
  void (*pack_bits)(int bits, const std::uint32_t* values, std::size_t n,
                    std::uint8_t* out);

  /// Unpack n entries of `bits` width from `packed` into out[0..n).
  void (*unpack_bits)(int bits, const std::uint8_t* packed, std::size_t n,
                      std::uint32_t* out);

  /// GEMM row-band microkernel: c[j] += a * b[j] for j in [0, n), each
  /// element an independent unfused multiply-add.
  void (*axpy)(float a, const float* b, float* c, std::size_t n);

  /// Aggregation self-term: dst[j] = a * src[j] for j in [0, n) — a pure
  /// overwrite, one multiply per element, so lanes are independent and the
  /// result is bit-identical across ISAs by IEEE multiplication alone.
  /// dst and src must not overlap (the aggregation output buffer is
  /// disjoint from the layer input).
  void (*scale_row)(float a, const float* src, float* dst, std::size_t n);

  /// Error-feedback fold: dst[j] = a[j] + b[j] — one IEEE addition per
  /// element, no accumulation, so bit-identity across ISAs is trivial.
  /// dst may alias a (the in-place residual fold) but not partially
  /// overlap it.
  void (*ef_fold)(const float* a, const float* b, float* dst, std::size_t n);

  /// Error-feedback residual: dst[j] = a[j] - b[j] — one IEEE subtraction
  /// per element; same aliasing rule as ef_fold.
  void (*ef_residual)(const float* a, const float* b, float* dst,
                      std::size_t n);

  /// Aggregation gather band: for each k ascending in [0, count),
  /// dst[j] += coeffs[k] * base[idx[k] * stride + j] for j in [0, n).
  /// The k loop is strictly serial per element (vectorization is across j,
  /// the feature channels), so every dst element sees the identical
  /// k-ascending unfused multiply-add chain on every ISA and thread count —
  /// the same argument that keeps gemm's k-loop bit-identical. dst must not
  /// alias any gathered row.
  void (*gather_axpy)(const float* base, std::size_t stride,
                      const std::uint32_t* idx, const float* coeffs,
                      std::size_t count, float* dst, std::size_t n);
};

/// Table for active_isa(), resolved once and cached; set_isa_override()
/// invalidates the cache. Thread-safe; throws on malformed ADAQP_ISA.
const KernelTable& kernels();

// Per-ISA table factories, defined one per translation unit. Return nullptr
// when the library was not built for that architecture. Entries may be
// null; the registry backfills them from scalar_kernels().
const KernelTable* scalar_kernels();  // never null, all entries set
const KernelTable* sse42_kernels();
const KernelTable* avx2_kernels();
const KernelTable* avx512_kernels();
const KernelTable* neon_kernels();

}  // namespace adaqp::simd
