// NEON kernels (aarch64; 4-wide float math with byte-staged packing).
// NEON is baseline on aarch64, so no -m flags and no runtime feature check
// are needed; -ffp-contract=off still matters and no vmla/vfma intrinsics
// are used (the fused forms), so multiply-add rounding matches the scalar
// reference exactly. The codec mirrors the SSE4.2 structure: vectorized
// quantize/widen through a 16-byte staging chunk, scalar bit combine/expand
// on the staging bytes (exact integer ops — byte-identity is unaffected).
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  std::size_t i = 0;
  float l = x[0], h = x[0];
  if (n >= 4) {
    float32x4_t vlo = vld1q_f32(x);
    float32x4_t vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const float32x4_t v = vld1q_f32(x + i);
      vlo = vminq_f32(vlo, v);
      vhi = vmaxq_f32(vhi, v);
    }
    l = vminvq_f32(vlo);
    h = vmaxvq_f32(vhi);
  }
  for (; i < n; ++i) {
    if (x[i] < l) l = x[i];
    if (x[i] > h) h = x[i];
  }
  *lo = l;
  *hi = h;
}

/// Quantize 4 lanes: the scalar per-element op sequence, lane-wise.
/// vrndmq_f32 rounds toward -inf (floor); vcvtq_u32_f32 truncates toward
/// zero on the non-negative clamped value, matching static_cast<uint32_t>.
inline uint32x4_t quant4(float32x4_t v, float32x4_t uu, float32x4_t vzp,
                         float32x4_t vs, float32x4_t vlev, float32x4_t vone,
                         float32x4_t vzero) {
  const float32x4_t xs = vdivq_f32(vsubq_f32(v, vzp), vs);
  const float32x4_t fl = vrndmq_f32(xs);
  const float32x4_t frac = vsubq_f32(xs, fl);
  const uint32x4_t up = vcltq_f32(uu, frac);
  float32x4_t r = vaddq_f32(fl, vbslq_f32(up, vone, vzero));
  r = vminq_f32(vmaxq_f32(r, vzero), vlev);
  return vcvtq_u32_f32(r);
}

/// Scalar tail of the same sequence (identical IEEE ops, so bit-identical).
inline std::uint32_t quant1(float x, float uu, float zp, float scale,
                            float levels) {
  const float xs = (x - zp) / scale;
  const float fl = __builtin_floorf(xs);
  const float frac = xs - fl;
  float r = fl + (uu < frac ? 1.0f : 0.0f);
  if (r < 0.0f) r = 0.0f;
  if (r > levels) r = levels;
  return static_cast<std::uint32_t>(r);
}

/// Narrow four 4-lane u32 vectors (values <= 255) into 16 bytes in order.
inline uint8x16_t narrow16(uint32x4_t q0, uint32x4_t q1, uint32x4_t q2,
                           uint32x4_t q3) {
  const uint16x8_t lo = vcombine_u16(vmovn_u32(q0), vmovn_u32(q1));
  const uint16x8_t hi = vcombine_u16(vmovn_u32(q2), vmovn_u32(q3));
  return vcombine_u8(vmovn_u16(lo), vmovn_u16(hi));
}

/// Combine a 16-byte staging chunk (one quantized value per byte, already
/// < 2^bits) into packed little-endian-within-byte output. `count` values
/// are valid; the rest of the staging bytes must be zero.
inline std::size_t combine16(int bits, const std::uint8_t* s,
                             std::size_t count, std::uint8_t* out) {
  if (count > 16) __builtin_unreachable();  // s is a 16-byte staging chunk
  switch (bits) {
    case 8:
      std::memcpy(out, s, count);
      return count;
    case 4: {
      const std::size_t nbytes = (count + 1) / 2;
      for (std::size_t j = 0; j < nbytes; ++j)
        out[j] = static_cast<std::uint8_t>(s[2 * j] | (s[2 * j + 1] << 4));
      return nbytes;
    }
    default: {  // 2
      const std::size_t nbytes = (count + 3) / 4;
      for (std::size_t j = 0; j < nbytes; ++j)
        out[j] = static_cast<std::uint8_t>(s[4 * j] | (s[4 * j + 1] << 2) |
                                           (s[4 * j + 2] << 4) |
                                           (s[4 * j + 3] << 6));
      return nbytes;
    }
  }
}

/// Expand one 16-byte packed chunk into one byte per value in s[0..15].
/// `count` values are valid (count <= 16); reads ceil(count*bits/8) bytes.
inline std::size_t expand16(int bits, const std::uint8_t* packed,
                            std::size_t count, std::uint8_t* s) {
  if (count > 16) __builtin_unreachable();  // s is a 16-byte staging chunk
  switch (bits) {
    case 8:
      std::memcpy(s, packed, count);
      return count;
    case 4: {
      const std::size_t nbytes = (count + 1) / 2;
      for (std::size_t j = 0; j < nbytes; ++j) {
        s[2 * j] = packed[j] & 0x0F;
        s[2 * j + 1] = packed[j] >> 4;
      }
      return nbytes;
    }
    default: {  // 2
      const std::size_t nbytes = (count + 3) / 4;
      for (std::size_t j = 0; j < nbytes; ++j) {
        s[4 * j] = packed[j] & 3;
        s[4 * j + 1] = (packed[j] >> 2) & 3;
        s[4 * j + 2] = (packed[j] >> 4) & 3;
        s[4 * j + 3] = (packed[j] >> 6) & 3;
      }
      return nbytes;
    }
  }
}

void quantize_pack(int bits, const float* x, std::size_t n, float zp,
                   float scale, const float* u, std::uint8_t* out) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const float32x4_t vzp = vdupq_n_f32(zp);
  const float32x4_t vs = vdupq_n_f32(scale);
  const float32x4_t vlev = vdupq_n_f32(levels);
  const float32x4_t vone = vdupq_n_f32(1.0f);
  const float32x4_t vzero = vdupq_n_f32(0.0f);
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    const uint32x4_t q0 = quant4(vld1q_f32(x + i), vld1q_f32(u + i), vzp, vs,
                                 vlev, vone, vzero);
    const uint32x4_t q1 = quant4(vld1q_f32(x + i + 4), vld1q_f32(u + i + 4),
                                 vzp, vs, vlev, vone, vzero);
    const uint32x4_t q2 = quant4(vld1q_f32(x + i + 8), vld1q_f32(u + i + 8),
                                 vzp, vs, vlev, vone, vzero);
    const uint32x4_t q3 = quant4(vld1q_f32(x + i + 12), vld1q_f32(u + i + 12),
                                 vzp, vs, vlev, vone, vzero);
    vst1q_u8(s, narrow16(q0, q1, q2, q3));
    out += combine16(bits, s, 16, out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(
          quant1(x[i + t], u[i + t], zp, scale, levels));
    combine16(bits, s, rem, out);
  }
}

void unpack_dequant(int bits, const std::uint8_t* packed, std::size_t n,
                    float scale, float zp, float* out) {
  const float32x4_t vs = vdupq_n_f32(scale);
  const float32x4_t vzp = vdupq_n_f32(zp);
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, 16, s);
    const uint8x16_t bytes = vld1q_u8(s);
    const uint16x8_t lo = vmovl_u8(vget_low_u8(bytes));
    const uint16x8_t hi = vmovl_u8(vget_high_u8(bytes));
    const float32x4_t f0 = vcvtq_f32_u32(vmovl_u16(vget_low_u16(lo)));
    const float32x4_t f1 = vcvtq_f32_u32(vmovl_u16(vget_high_u16(lo)));
    const float32x4_t f2 = vcvtq_f32_u32(vmovl_u16(vget_low_u16(hi)));
    const float32x4_t f3 = vcvtq_f32_u32(vmovl_u16(vget_high_u16(hi)));
    // Explicit mul then add (not vmla) to match the unfused scalar path.
    vst1q_f32(out + i, vaddq_f32(vmulq_f32(f0, vs), vzp));
    vst1q_f32(out + i + 4, vaddq_f32(vmulq_f32(f1, vs), vzp));
    vst1q_f32(out + i + 8, vaddq_f32(vmulq_f32(f2, vs), vzp));
    vst1q_f32(out + i + 12, vaddq_f32(vmulq_f32(f3, vs), vzp));
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    expand16(bits, packed, rem, s);
    for (std::size_t t = 0; t < rem; ++t)
      out[i + t] = static_cast<float>(s[t]) * scale + zp;
  }
}

void pack_bits_k(int bits, const std::uint32_t* values, std::size_t n,
                 std::uint8_t* out) {
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    vst1q_u8(s, narrow16(vld1q_u32(values + i), vld1q_u32(values + i + 4),
                         vld1q_u32(values + i + 8),
                         vld1q_u32(values + i + 12)));
    out += combine16(bits, s, 16, out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(values[i + t]);
    combine16(bits, s, rem, out);
  }
}

void unpack_bits_k(int bits, const std::uint8_t* packed, std::size_t n,
                   std::uint32_t* out) {
  std::uint8_t s[16];
  std::size_t i = 0;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, 16, s);
    const uint8x16_t bytes = vld1q_u8(s);
    const uint16x8_t lo = vmovl_u8(vget_low_u8(bytes));
    const uint16x8_t hi = vmovl_u8(vget_high_u8(bytes));
    vst1q_u32(out + i, vmovl_u16(vget_low_u16(lo)));
    vst1q_u32(out + i + 4, vmovl_u16(vget_high_u16(lo)));
    vst1q_u32(out + i + 8, vmovl_u16(vget_low_u16(hi)));
    vst1q_u32(out + i + 12, vmovl_u16(vget_high_u16(hi)));
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    expand16(bits, packed, rem, s);
    for (std::size_t t = 0; t < rem; ++t) out[i + t] = s[t];
  }
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // Explicit mul then add (not vfmaq) to match the unfused scalar path.
    const float32x4_t p = vmulq_f32(va, vld1q_f32(b + j));
    vst1q_f32(c + j, vaddq_f32(vld1q_f32(c + j), p));
  }
  for (; j < n; ++j) c[j] += a * b[j];
}

void scale_row(float a, const float* src, float* dst, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    vst1q_f32(dst + j, vmulq_f32(va, vld1q_f32(src + j)));
  for (; j < n; ++j) dst[j] = a * src[j];
}

void ef_fold(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    vst1q_f32(dst + j, vaddq_f32(vld1q_f32(a + j), vld1q_f32(b + j)));
  for (; j < n; ++j) dst[j] = a[j] + b[j];
}

void ef_residual(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    vst1q_f32(dst + j, vsubq_f32(vld1q_f32(a + j), vld1q_f32(b + j)));
  for (; j < n; ++j) dst[j] = a[j] - b[j];
}

void gather_axpy(const float* base, std::size_t stride,
                 const std::uint32_t* idx, const float* coeffs,
                 std::size_t count, float* dst, std::size_t n) {
  // k stays a serial outer loop (the determinism contract); only the
  // feature channels j are vectorized, unfused mul-then-add per element.
  for (std::size_t k = 0; k < count; ++k) {
    const float ck = coeffs[k];
    const float* src = base + static_cast<std::size_t>(idx[k]) * stride;
    const float32x4_t vc = vdupq_n_f32(ck);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float32x4_t p = vmulq_f32(vc, vld1q_f32(src + j));
      vst1q_f32(dst + j, vaddq_f32(vld1q_f32(dst + j), p));
    }
    for (; j < n; ++j) dst[j] += ck * src[j];
  }
}

const KernelTable kTable = {
    row_minmax, quantize_pack, unpack_dequant,
    pack_bits_k, unpack_bits_k, axpy,
    scale_row,  ef_fold,       ef_residual,
    gather_axpy,
};

}  // namespace

const KernelTable* neon_kernels() { return &kTable; }

}  // namespace adaqp::simd

#else  // non-aarch64: variant not built

#include "simd/kernels.h"

namespace adaqp::simd {
const KernelTable* neon_kernels() { return nullptr; }
}  // namespace adaqp::simd

#endif
