// NEON stub (aarch64). Dispatch plumbing only for now: the min/max scan and
// the GEMM axpy microkernel are implemented 4-wide; the codec kernels are
// left null so the registry backfills them with the scalar reference
// (byte-identity is then trivial). Filling in the codec kernels is a
// ROADMAP follow-on. NEON is baseline on aarch64, so no -m flags and no
// runtime feature check are needed; -ffp-contract=off still matters (the
// aarch64 compiler would otherwise fuse the axpy multiply-add).
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  std::size_t i = 0;
  float l = x[0], h = x[0];
  if (n >= 4) {
    float32x4_t vlo = vld1q_f32(x);
    float32x4_t vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const float32x4_t v = vld1q_f32(x + i);
      vlo = vminq_f32(vlo, v);
      vhi = vmaxq_f32(vhi, v);
    }
    l = vminvq_f32(vlo);
    h = vmaxvq_f32(vhi);
  }
  for (; i < n; ++i) {
    if (x[i] < l) l = x[i];
    if (x[i] > h) h = x[i];
  }
  *lo = l;
  *hi = h;
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // Explicit mul then add (not vfmaq) to match the unfused scalar path.
    const float32x4_t p = vmulq_f32(va, vld1q_f32(b + j));
    vst1q_f32(c + j, vaddq_f32(vld1q_f32(c + j), p));
  }
  for (; j < n; ++j) c[j] += a * b[j];
}

const KernelTable kTable = {
    row_minmax, nullptr, nullptr, nullptr, nullptr, axpy,
};

}  // namespace

const KernelTable* neon_kernels() { return &kTable; }

}  // namespace adaqp::simd

#else  // non-aarch64: variant not built

#include "simd/kernels.h"

namespace adaqp::simd {
const KernelTable* neon_kernels() { return nullptr; }
}  // namespace adaqp::simd

#endif
