// AVX-512 kernels (16-wide float math; vpmovdb narrowing for the packer).
// Compiled with -mavx512f -mavx512bw -mavx512vl -ffp-contract=off; only
// reached after runtime dispatch confirms avx512f+bw. SSE/AVX2 helper ops
// are fine here (the host necessarily supports them). No FMA instructions
// are used, so multiply-add rounding matches the scalar reference exactly.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  std::size_t i = 0;
  float l = x[0], h = x[0];
  if (n >= 16) {
    __m512 vlo = _mm512_loadu_ps(x);
    __m512 vhi = vlo;
    for (i = 16; i + 16 <= n; i += 16) {
      const __m512 v = _mm512_loadu_ps(x + i);
      vlo = _mm512_min_ps(vlo, v);
      vhi = _mm512_max_ps(vhi, v);
    }
    l = _mm512_reduce_min_ps(vlo);
    h = _mm512_reduce_max_ps(vhi);
  }
  for (; i < n; ++i) {
    if (x[i] < l) l = x[i];
    if (x[i] > h) h = x[i];
  }
  *lo = l;
  *hi = h;
}

/// Quantize 16 lanes: the scalar per-element op sequence, lane-wise.
/// 0x09 = round toward -inf (floor), suppress precision exceptions.
inline __m512i quant16(__m512 v, __m512 uu, __m512 vzp, __m512 vs,
                       __m512 vlev, __m512 vone, __m512 vzero) {
  const __m512 xs = _mm512_div_ps(_mm512_sub_ps(v, vzp), vs);
  const __m512 fl = _mm512_roundscale_ps(xs, 0x09);
  const __m512 frac = _mm512_sub_ps(xs, fl);
  const __mmask16 up = _mm512_cmp_ps_mask(uu, frac, _CMP_LT_OS);
  __m512 r = _mm512_mask_add_ps(fl, up, fl, vone);
  r = _mm512_min_ps(_mm512_max_ps(r, vzero), vlev);
  return _mm512_cvttps_epi32(r);
}

inline std::uint32_t quant1(float x, float uu, float zp, float scale,
                            float levels) {
  const float xs = (x - zp) / scale;
  const float fl = __builtin_floorf(xs);
  const float frac = xs - fl;
  float r = fl + (uu < frac ? 1.0f : 0.0f);
  if (r < 0.0f) r = 0.0f;
  if (r > levels) r = levels;
  return static_cast<std::uint32_t>(r);
}

/// Pack 16 byte-values (each < 2^bits) into ceil(16*bits/8) output bytes
/// using pairwise unsigned-byte multiply-adds (vpmaddubsw).
inline std::size_t pack16(int bits, __m128i bytes16, std::uint8_t* out) {
  switch (bits) {
    case 8:
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out), bytes16);
      return 16;
    case 4: {
      const __m128i m16 =
          _mm_maddubs_epi16(bytes16, _mm_set1_epi16(0x1001));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out),
                       _mm_packus_epi16(m16, m16));
      return 8;
    }
    default: {  // 2
      const __m128i m4 = _mm_maddubs_epi16(bytes16, _mm_set1_epi16(0x0401));
      const __m128i b4 = _mm_packus_epi16(m4, m4);
      const __m128i m16 = _mm_maddubs_epi16(b4, _mm_set1_epi16(0x1001));
      const __m128i b16 = _mm_packus_epi16(m16, m16);
      const int packed = _mm_cvtsi128_si32(b16);
      std::memcpy(out, &packed, 4);
      return 4;
    }
  }
}

void quantize_pack(int bits, const float* x, std::size_t n, float zp,
                   float scale, const float* u, std::uint8_t* out) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const __m512 vzp = _mm512_set1_ps(zp);
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vlev = _mm512_set1_ps(levels);
  const __m512 vone = _mm512_set1_ps(1.0f);
  const __m512 vzero = _mm512_setzero_ps();
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m512i q = quant16(_mm512_loadu_ps(x + i), _mm512_loadu_ps(u + i),
                              vzp, vs, vlev, vone, vzero);
    out += pack16(bits, _mm512_cvtepi32_epi8(q), out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::uint8_t s[16];
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(
          quant1(x[i + t], u[i + t], zp, scale, levels));
    const std::size_t nbytes =
        (rem * static_cast<std::size_t>(bits) + 7) / 8;
    std::uint8_t tmp[16];
    pack16(bits, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)), tmp);
    std::memcpy(out, tmp, nbytes);
  }
}

/// Expand one full 16-value chunk of packed data into 16 byte-values.
inline std::size_t expand16(int bits, const std::uint8_t* packed,
                            __m128i* bytes16) {
  switch (bits) {
    case 8:
      *bytes16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(packed));
      return 16;
    case 4: {
      const __m128i v = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(packed));
      const __m128i lo = _mm_and_si128(v, _mm_set1_epi8(0x0F));
      const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4),
                                       _mm_set1_epi8(0x0F));
      *bytes16 = _mm_unpacklo_epi8(lo, hi);
      return 8;
    }
    default: {  // 2
      std::uint32_t x;
      std::memcpy(&x, packed, 4);
      const __m512i sh = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18,
                                           20, 22, 24, 26, 28, 30);
      const __m512i v = _mm512_and_si512(
          _mm512_srlv_epi32(_mm512_set1_epi32(static_cast<int>(x)), sh),
          _mm512_set1_epi32(3));
      *bytes16 = _mm512_cvtepi32_epi8(v);
      return 4;
    }
  }
}

void unpack_dequant(int bits, const std::uint8_t* packed, std::size_t n,
                    float scale, float zp, float* out) {
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vzp = _mm512_set1_ps(zp);
  std::size_t i = 0;
  __m128i bytes16;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, &bytes16);
    const __m512 q = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes16));
    _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_mul_ps(q, vs), vzp));
    i += 16;
  }
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t t = 0; i + t < n; ++t) {
    const std::size_t bit_pos = t * static_cast<std::size_t>(bits);
    const std::uint32_t q = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
    out[i + t] = static_cast<float>(q) * scale + zp;
  }
}

void pack_bits_k(int bits, const std::uint32_t* values, std::size_t n,
                 std::uint8_t* out) {
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m512i q = _mm512_loadu_si512(values + i);
    out += pack16(bits, _mm512_cvtepi32_epi8(q), out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::uint8_t s[16];
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(values[i + t]);
    const std::size_t nbytes =
        (rem * static_cast<std::size_t>(bits) + 7) / 8;
    std::uint8_t tmp[16];
    pack16(bits, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)), tmp);
    std::memcpy(out, tmp, nbytes);
  }
}

void unpack_bits_k(int bits, const std::uint8_t* packed, std::size_t n,
                   std::uint32_t* out) {
  std::size_t i = 0;
  __m128i bytes16;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, &bytes16);
    _mm512_storeu_si512(out + i, _mm512_cvtepu8_epi32(bytes16));
    i += 16;
  }
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t t = 0; i + t < n; ++t) {
    const std::size_t bit_pos = t * static_cast<std::size_t>(bits);
    out[i + t] = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
  }
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 p = _mm512_mul_ps(va, _mm512_loadu_ps(b + j));
    _mm512_storeu_ps(c + j, _mm512_add_ps(_mm512_loadu_ps(c + j), p));
  }
  if (j < n) {
    const __mmask16 m =
        static_cast<__mmask16>((1u << (n - j)) - 1u);
    const __m512 vb = _mm512_maskz_loadu_ps(m, b + j);
    const __m512 vc = _mm512_maskz_loadu_ps(m, c + j);
    _mm512_mask_storeu_ps(c + j, m,
                          _mm512_add_ps(vc, _mm512_mul_ps(va, vb)));
  }
}

void scale_row(float a, const float* src, float* dst, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16)
    _mm512_storeu_ps(dst + j, _mm512_mul_ps(va, _mm512_loadu_ps(src + j)));
  if (j < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - j)) - 1u);
    _mm512_mask_storeu_ps(
        dst + j, m, _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, src + j)));
  }
}

void ef_fold(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16)
    _mm512_storeu_ps(
        dst + j, _mm512_add_ps(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j)));
  if (j < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - j)) - 1u);
    _mm512_mask_storeu_ps(dst + j, m,
                          _mm512_add_ps(_mm512_maskz_loadu_ps(m, a + j),
                                        _mm512_maskz_loadu_ps(m, b + j)));
  }
}

void ef_residual(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16)
    _mm512_storeu_ps(
        dst + j, _mm512_sub_ps(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j)));
  if (j < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - j)) - 1u);
    _mm512_mask_storeu_ps(dst + j, m,
                          _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + j),
                                        _mm512_maskz_loadu_ps(m, b + j)));
  }
}

void gather_axpy(const float* base, std::size_t stride,
                 const std::uint32_t* idx, const float* coeffs,
                 std::size_t count, float* dst, std::size_t n) {
  // k stays a serial outer loop (the determinism contract); only the
  // feature channels j are vectorized, unfused mul-then-add per element.
  for (std::size_t k = 0; k < count; ++k) {
    const float ck = coeffs[k];
    const float* src = base + static_cast<std::size_t>(idx[k]) * stride;
    const __m512 vc = _mm512_set1_ps(ck);
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m512 p = _mm512_mul_ps(vc, _mm512_loadu_ps(src + j));
      _mm512_storeu_ps(dst + j, _mm512_add_ps(_mm512_loadu_ps(dst + j), p));
    }
    if (j < n) {
      const __mmask16 m = static_cast<__mmask16>((1u << (n - j)) - 1u);
      const __m512 p = _mm512_mul_ps(vc, _mm512_maskz_loadu_ps(m, src + j));
      _mm512_mask_storeu_ps(
          dst + j, m, _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst + j), p));
    }
  }
}

const KernelTable kTable = {
    row_minmax, quantize_pack, unpack_dequant,
    pack_bits_k, unpack_bits_k, axpy,
    scale_row,  ef_fold,       ef_residual,
    gather_axpy,
};

}  // namespace

const KernelTable* avx512_kernels() { return &kTable; }

}  // namespace adaqp::simd

#else  // non-x86: variant not built

#include "simd/kernels.h"

namespace adaqp::simd {
const KernelTable* avx512_kernels() { return nullptr; }
}  // namespace adaqp::simd

#endif
