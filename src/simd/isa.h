// Runtime ISA selection for the vector kernel library (src/simd/).
//
// The library ships one reference (scalar) implementation of every kernel
// plus optional SSE4.2 / AVX2 / AVX-512 variants on x86-64 and a NEON stub
// on aarch64, each compiled in its own translation unit with the matching
// -m flags. Which variant runs is decided once at runtime:
//
//   1. an in-process override installed via set_isa_override() (tests,
//      benches and in-process sweeps), else
//   2. the ADAQP_ISA environment variable, else
//   3. cpuid detection of the best ISA the host supports.
//
// ADAQP_ISA parsing is strict, alongside ADAQP_ASYNC and ADAQP_THREADS:
// accepted values are "scalar", "sse42", "avx2", "avx512", "neon" and
// "native" (= detected best); anything else throws std::runtime_error, as
// does requesting an ISA the host cannot execute. Every kernel variant is
// wire-compatible by contract: codec streams are byte-identical and compute
// kernels bit-identical across ISAs, so switching ISAs never changes
// results, only throughput (tests/test_simd.cpp enforces this).
#pragma once

#include <string_view>
#include <vector>

namespace adaqp::simd {

/// Kernel instruction-set variants, ordered weakest to strongest within an
/// architecture. kScalar is the portable reference and always available.
enum class Isa {
  kScalar = 0,
  kSse42,
  kAvx2,
  kAvx512,
  kNeon,
};

/// Lower-case canonical name ("scalar", "sse42", ...), as accepted by
/// ADAQP_ISA.
const char* isa_name(Isa isa);

/// Strict parse of an ADAQP_ISA value. Throws std::runtime_error on
/// anything but the canonical names or "native" (which resolves to
/// detected_isa()).
Isa parse_isa(std::string_view value);

/// Best ISA the host CPU can execute, via cpuid (x86) / architecture
/// macros (aarch64).
Isa detected_isa();

/// True when the host can execute `isa`'s instructions.
bool isa_supported(Isa isa);

/// Every host-supported ISA, weakest first (always starts with kScalar).
/// Benches and tests sweep this list.
std::vector<Isa> supported_isas();

/// ISA the kernel registry dispatches to: override > ADAQP_ISA > detected.
/// Throws std::runtime_error on a malformed ADAQP_ISA value or on a request
/// for an unsupported ISA.
Isa active_isa();

/// Force the dispatched ISA for the current process (pass kScalar..kNeon),
/// or clear the override with clear_isa_override(). Throws if `isa` is not
/// supported by the host. Takes effect on the next kernels() call; must not
/// race with in-flight kernel work.
void set_isa_override(Isa isa);
void clear_isa_override();

/// Scoped ISA override; restores the previous override state on
/// destruction. The sweep primitive used by tests and bench_quant_kernels.
class IsaGuard {
 public:
  explicit IsaGuard(Isa isa);
  ~IsaGuard();
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  bool had_override_;
  Isa prev_;
};

}  // namespace adaqp::simd
