// AVX2 kernels (8-wide float math, vectorized 2/4/8-bit packing). Compiled
// with -mavx2 -ffp-contract=off; only reached after runtime dispatch
// confirms AVX2 support. No FMA instructions are used anywhere so the
// multiply-add rounding matches the scalar reference exactly (see
// kernels.h for the full determinism contract).
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  std::size_t i = 0;
  float l = x[0], h = x[0];
  if (n >= 8) {
    __m256 vlo = _mm256_loadu_ps(x);
    __m256 vhi = vlo;
    for (i = 8; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(x + i);
      vlo = _mm256_min_ps(vlo, v);
      vhi = _mm256_max_ps(vhi, v);
    }
    float tl[8], th[8];
    _mm256_storeu_ps(tl, vlo);
    _mm256_storeu_ps(th, vhi);
    l = tl[0];
    h = th[0];
    for (int k = 1; k < 8; ++k) {
      if (tl[k] < l) l = tl[k];
      if (th[k] > h) h = th[k];
    }
  }
  for (; i < n; ++i) {
    if (x[i] < l) l = x[i];
    if (x[i] > h) h = x[i];
  }
  *lo = l;
  *hi = h;
}

/// Quantize 8 lanes: the scalar per-element op sequence, lane-wise.
inline __m256i quant8(__m256 v, __m256 uu, __m256 vzp, __m256 vs, __m256 vlev,
                      __m256 vone, __m256 vzero) {
  const __m256 xs = _mm256_div_ps(_mm256_sub_ps(v, vzp), vs);
  const __m256 fl = _mm256_floor_ps(xs);
  const __m256 frac = _mm256_sub_ps(xs, fl);
  const __m256 bump =
      _mm256_and_ps(_mm256_cmp_ps(uu, frac, _CMP_LT_OS), vone);
  __m256 r = _mm256_add_ps(fl, bump);
  r = _mm256_min_ps(_mm256_max_ps(r, vzero), vlev);
  return _mm256_cvttps_epi32(r);
}

inline std::uint32_t quant1(float x, float uu, float zp, float scale,
                            float levels) {
  const float xs = (x - zp) / scale;
  const float fl = __builtin_floorf(xs);
  const float frac = xs - fl;
  float r = fl + (uu < frac ? 1.0f : 0.0f);
  if (r < 0.0f) r = 0.0f;
  if (r > levels) r = levels;
  return static_cast<std::uint32_t>(r);
}

/// Narrow two 8-lane u32 vectors (values <= 255) to 16 bytes in order.
inline __m128i narrow16(__m256i q0, __m256i q1) {
  __m256i p16 = _mm256_packus_epi32(q0, q1);        // a0-3 b0-3 | a4-7 b4-7
  p16 = _mm256_permute4x64_epi64(p16, 0xD8);        // a0-7 | b0-7
  const __m256i p8 = _mm256_packus_epi16(p16, p16); // a0-7 a0-7 | b0-7 b0-7
  return _mm_unpacklo_epi64(_mm256_castsi256_si128(p8),
                            _mm256_extracti128_si256(p8, 1));
}

/// Pack 16 byte-values (each < 2^bits) into ceil(16*bits/8) output bytes
/// using pairwise unsigned-byte multiply-adds (vpmaddubsw).
inline std::size_t pack16(int bits, __m128i bytes16, std::uint8_t* out) {
  switch (bits) {
    case 8:
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out), bytes16);
      return 16;
    case 4: {
      // s[2j] + 16*s[2j+1] per i16 lane, then narrow to 8 bytes.
      const __m128i m16 =
          _mm_maddubs_epi16(bytes16, _mm_set1_epi16(0x1001));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out),
                       _mm_packus_epi16(m16, m16));
      return 8;
    }
    default: {  // 2
      const __m128i m4 = _mm_maddubs_epi16(bytes16, _mm_set1_epi16(0x0401));
      const __m128i b4 = _mm_packus_epi16(m4, m4);  // 8 pair-values
      const __m128i m16 = _mm_maddubs_epi16(b4, _mm_set1_epi16(0x1001));
      const __m128i b16 = _mm_packus_epi16(m16, m16);
      const int packed = _mm_cvtsi128_si32(b16);
      std::memcpy(out, &packed, 4);
      return 4;
    }
  }
}

void quantize_pack(int bits, const float* x, std::size_t n, float zp,
                   float scale, const float* u, std::uint8_t* out) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const __m256 vzp = _mm256_set1_ps(zp);
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vlev = _mm256_set1_ps(levels);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vzero = _mm256_setzero_ps();
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m256i q0 = quant8(_mm256_loadu_ps(x + i), _mm256_loadu_ps(u + i),
                              vzp, vs, vlev, vone, vzero);
    const __m256i q1 =
        quant8(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(u + i + 8), vzp,
               vs, vlev, vone, vzero);
    out += pack16(bits, narrow16(q0, q1), out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::uint8_t s[16];
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(
          quant1(x[i + t], u[i + t], zp, scale, levels));
    const std::size_t nbytes =
        (rem * static_cast<std::size_t>(bits) + 7) / 8;
    std::uint8_t tmp[16];
    pack16(bits, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)), tmp);
    std::memcpy(out, tmp, nbytes);
  }
}

/// Expand ceil(16*bits/8) packed bytes into 16 byte-values via variable
/// 32-bit shifts: value i of a packed u32 X is (X >> (bits*i)) & mask.
inline std::size_t expand16(int bits, const std::uint8_t* packed,
                            __m128i* bytes16) {
  switch (bits) {
    case 8:
      *bytes16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(packed));
      return 16;
    case 4: {
      std::uint32_t x0, x1;
      std::memcpy(&x0, packed, 4);
      std::memcpy(&x1, packed + 4, 4);
      const __m256i sh = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
      const __m256i mask = _mm256_set1_epi32(0x0F);
      const __m256i v0 =
          _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(
                               static_cast<int>(x0)), sh), mask);
      const __m256i v1 =
          _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(
                               static_cast<int>(x1)), sh), mask);
      *bytes16 = narrow16(v0, v1);
      return 8;
    }
    default: {  // 2
      std::uint32_t x;
      std::memcpy(&x, packed, 4);
      const __m256i lo_sh = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
      const __m256i hi_sh =
          _mm256_setr_epi32(16, 18, 20, 22, 24, 26, 28, 30);
      const __m256i mask = _mm256_set1_epi32(3);
      const __m256i bx = _mm256_set1_epi32(static_cast<int>(x));
      const __m256i v0 = _mm256_and_si256(_mm256_srlv_epi32(bx, lo_sh), mask);
      const __m256i v1 = _mm256_and_si256(_mm256_srlv_epi32(bx, hi_sh), mask);
      *bytes16 = narrow16(v0, v1);
      return 4;
    }
  }
}

void unpack_dequant(int bits, const std::uint8_t* packed, std::size_t n,
                    float scale, float zp, float* out) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vzp = _mm256_set1_ps(zp);
  std::size_t i = 0;
  __m128i bytes16;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, &bytes16);
    const __m256 q0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes16));
    const __m256 q1 = _mm256_cvtepi32_ps(
        _mm256_cvtepu8_epi32(_mm_srli_si128(bytes16, 8)));
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_mul_ps(q0, vs), vzp));
    _mm256_storeu_ps(out + i + 8,
                     _mm256_add_ps(_mm256_mul_ps(q1, vs), vzp));
    i += 16;
  }
  // `packed` already points at the first tail byte; tail bit positions are
  // relative to it (16 values always consume a whole number of bytes).
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t t = 0; i + t < n; ++t) {
    const std::size_t bit_pos = t * static_cast<std::size_t>(bits);
    const std::uint32_t q = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
    out[i + t] = static_cast<float>(q) * scale + zp;
  }
}

void pack_bits_k(int bits, const std::uint32_t* values, std::size_t n,
                 std::uint8_t* out) {
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m256i q0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + i));
    const __m256i q1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + i + 8));
    out += pack16(bits, narrow16(q0, q1), out);
    i += 16;
  }
  if (i < n) {
    const std::size_t rem = n - i;
    std::uint8_t s[16];
    std::memset(s, 0, sizeof(s));
    for (std::size_t t = 0; t < rem; ++t)
      s[t] = static_cast<std::uint8_t>(values[i + t]);
    const std::size_t nbytes =
        (rem * static_cast<std::size_t>(bits) + 7) / 8;
    std::uint8_t tmp[16];
    pack16(bits, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)), tmp);
    std::memcpy(out, tmp, nbytes);
  }
}

void unpack_bits_k(int bits, const std::uint8_t* packed, std::size_t n,
                   std::uint32_t* out) {
  std::size_t i = 0;
  __m128i bytes16;
  while (i + 16 <= n) {
    packed += expand16(bits, packed, &bytes16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepu8_epi32(bytes16));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                        _mm256_cvtepu8_epi32(_mm_srli_si128(bytes16, 8)));
    i += 16;
  }
  if (i < n) {
    const std::uint32_t mask = (1u << bits) - 1u;
    for (std::size_t t = 0; t < n - i; ++t) {
      const std::size_t bit_pos = t * static_cast<std::size_t>(bits);
      out[i + t] = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
    }
  }
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(b + j));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(b + j + 8));
    _mm256_storeu_ps(c + j, _mm256_add_ps(_mm256_loadu_ps(c + j), p0));
    _mm256_storeu_ps(c + j + 8,
                     _mm256_add_ps(_mm256_loadu_ps(c + j + 8), p1));
  }
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(
        c + j, _mm256_add_ps(_mm256_loadu_ps(c + j),
                             _mm256_mul_ps(va, _mm256_loadu_ps(b + j))));
  for (; j < n; ++j) c[j] += a * b[j];
}

void scale_row(float a, const float* src, float* dst, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm256_storeu_ps(dst + j, _mm256_mul_ps(va, _mm256_loadu_ps(src + j)));
    _mm256_storeu_ps(dst + j + 8,
                     _mm256_mul_ps(va, _mm256_loadu_ps(src + j + 8)));
  }
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(dst + j, _mm256_mul_ps(va, _mm256_loadu_ps(src + j)));
  for (; j < n; ++j) dst[j] = a * src[j];
}

void ef_fold(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(
        dst + j, _mm256_add_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  for (; j < n; ++j) dst[j] = a[j] + b[j];
}

void ef_residual(const float* a, const float* b, float* dst, std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(
        dst + j, _mm256_sub_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)));
  for (; j < n; ++j) dst[j] = a[j] - b[j];
}

void gather_axpy(const float* base, std::size_t stride,
                 const std::uint32_t* idx, const float* coeffs,
                 std::size_t count, float* dst, std::size_t n) {
  // k stays a serial outer loop (the determinism contract); only the
  // feature channels j are vectorized, with the same unfused mul-then-add
  // per element the scalar reference performs.
  for (std::size_t k = 0; k < count; ++k) {
    const float ck = coeffs[k];
    const float* src = base + static_cast<std::size_t>(idx[k]) * stride;
    const __m256 vc = _mm256_set1_ps(ck);
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m256 p0 = _mm256_mul_ps(vc, _mm256_loadu_ps(src + j));
      const __m256 p1 = _mm256_mul_ps(vc, _mm256_loadu_ps(src + j + 8));
      _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j), p0));
      _mm256_storeu_ps(dst + j + 8,
                       _mm256_add_ps(_mm256_loadu_ps(dst + j + 8), p1));
    }
    for (; j + 8 <= n; j += 8)
      _mm256_storeu_ps(
          dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                 _mm256_mul_ps(vc, _mm256_loadu_ps(src + j))));
    for (; j < n; ++j) dst[j] += ck * src[j];
  }
}

const KernelTable kTable = {
    row_minmax, quantize_pack, unpack_dequant,
    pack_bits_k, unpack_bits_k, axpy,
    scale_row,  ef_fold,       ef_residual,
    gather_axpy,
};

}  // namespace

const KernelTable* avx2_kernels() { return &kTable; }

}  // namespace adaqp::simd

#else  // non-x86: variant not built

#include "simd/kernels.h"

namespace adaqp::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace adaqp::simd

#endif
