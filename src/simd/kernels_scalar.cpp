// Scalar reference kernels — the portable implementation every vector ISA
// must match bit-for-bit (wire streams byte-identical, float outputs
// bit-identical). The arithmetic here is the original quant/quantize.cpp
// hot-loop sequence, verbatim; keep it boring. Built with -ffp-contract=off
// like every kernel TU so no platform fuses the dequant multiply-add.
#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace adaqp::simd {
namespace {

void row_minmax(const float* x, std::size_t n, float* lo, float* hi) {
  float l = x[0], h = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    const float v = x[i];
    if (v < l) l = v;
    if (v > h) h = v;
  }
  *lo = l;
  *hi = h;
}

void quantize_pack(int bits, const float* x, std::size_t n, float zp,
                   float scale, const float* u, std::uint8_t* out) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const std::size_t nbytes = (n * static_cast<std::size_t>(bits) + 7) / 8;
  for (std::size_t b = 0; b < nbytes; ++b) out[b] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float xs = (x[i] - zp) / scale;
    const float fl = __builtin_floorf(xs);
    const float frac = xs - fl;
    float r = fl + (u[i] < frac ? 1.0f : 0.0f);
    if (r < 0.0f) r = 0.0f;
    if (r > levels) r = levels;
    const auto q = static_cast<std::uint32_t>(r);
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    out[bit_pos / 8] |= static_cast<std::uint8_t>(q << (bit_pos % 8));
  }
}

void unpack_dequant(int bits, const std::uint8_t* packed, std::size_t n,
                    float scale, float zp, float* out) {
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    const std::uint32_t q = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
    out[i] = static_cast<float>(q) * scale + zp;
  }
}

void pack_bits_k(int bits, const std::uint32_t* values, std::size_t n,
                 std::uint8_t* out) {
  const std::size_t nbytes = (n * static_cast<std::size_t>(bits) + 7) / 8;
  for (std::size_t b = 0; b < nbytes; ++b) out[b] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    out[bit_pos / 8] |= static_cast<std::uint8_t>(values[i] << (bit_pos % 8));
  }
}

void unpack_bits_k(int bits, const std::uint8_t* packed, std::size_t n,
                   std::uint32_t* out) {
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit_pos = i * static_cast<std::size_t>(bits);
    out[i] = (packed[bit_pos / 8] >> (bit_pos % 8)) & mask;
  }
}

void axpy(float a, const float* b, float* c, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c[j] += a * b[j];
}

void scale_row(float a, const float* src, float* dst, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = a * src[j];
}

void ef_fold(const float* a, const float* b, float* dst, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = a[j] + b[j];
}

void ef_residual(const float* a, const float* b, float* dst, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = a[j] - b[j];
}

void gather_axpy(const float* base, std::size_t stride,
                 const std::uint32_t* idx, const float* coeffs,
                 std::size_t count, float* dst, std::size_t n) {
  for (std::size_t k = 0; k < count; ++k) {
    const float ck = coeffs[k];
    const float* src = base + static_cast<std::size_t>(idx[k]) * stride;
    for (std::size_t j = 0; j < n; ++j) dst[j] += ck * src[j];
  }
}

const KernelTable kTable = {
    row_minmax, quantize_pack, unpack_dequant,
    pack_bits_k, unpack_bits_k, axpy,
    scale_row,  ef_fold,       ef_residual,
    gather_axpy,
};

}  // namespace

const KernelTable* scalar_kernels() { return &kTable; }

}  // namespace adaqp::simd
