// ISA resolution and the kernel registry (see isa.h / kernels.h).
#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/env.h"
#include "simd/isa.h"
#include "simd/kernels.h"

namespace adaqp::simd {

namespace {

/// -1 = no override, else static_cast<int>(Isa).
std::atomic<int> g_override{-1};

/// Cached merged table for the currently active ISA. Cleared (nullptr) by
/// set/clear_isa_override so the next kernels() call re-resolves.
std::atomic<const KernelTable*> g_active_table{nullptr};
std::mutex g_resolve_mutex;

/// Merged tables (ISA entries backfilled with scalar), built on demand.
KernelTable g_merged[5];

const KernelTable* raw_table(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return scalar_kernels();
    case Isa::kSse42: return sse42_kernels();
    case Isa::kAvx2: return avx2_kernels();
    case Isa::kAvx512: return avx512_kernels();
    case Isa::kNeon: return neon_kernels();
  }
  return nullptr;
}

[[noreturn]] void throw_unsupported(Isa isa) {
  std::ostringstream msg;
  msg << "ADAQP_ISA: \"" << isa_name(isa)
      << "\" is not supported by this CPU (detected best: "
      << isa_name(detected_isa()) << ")";
  throw std::runtime_error(msg.str());
}

/// Build the dispatch table for `isa`: every null entry falls back to the
/// scalar reference, so a stub ISA (NEON today) still runs correctly.
const KernelTable* merged_table(Isa isa) {
  // The bound check is redundant (Isa has 5 enumerators) but keeps GCC's
  // array-bounds analysis quiet about the enum-indexed subscript.
  const auto idx = static_cast<std::size_t>(isa);
  KernelTable& merged = g_merged[idx < 5 ? idx : 0];
  const KernelTable* scalar = scalar_kernels();
  const KernelTable* native = raw_table(isa);
  merged = *scalar;
  if (native != nullptr) {
    if (native->row_minmax) merged.row_minmax = native->row_minmax;
    if (native->quantize_pack) merged.quantize_pack = native->quantize_pack;
    if (native->unpack_dequant) merged.unpack_dequant = native->unpack_dequant;
    if (native->pack_bits) merged.pack_bits = native->pack_bits;
    if (native->unpack_bits) merged.unpack_bits = native->unpack_bits;
    if (native->axpy) merged.axpy = native->axpy;
    if (native->scale_row) merged.scale_row = native->scale_row;
    if (native->ef_fold) merged.ef_fold = native->ef_fold;
    if (native->ef_residual) merged.ef_residual = native->ef_residual;
    if (native->gather_axpy) merged.gather_axpy = native->gather_axpy;
  }
  return &merged;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse42: return "sse42";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

Isa parse_isa(std::string_view value) {
  if (value == "scalar") return Isa::kScalar;
  if (value == "sse42") return Isa::kSse42;
  if (value == "avx2") return Isa::kAvx2;
  if (value == "avx512") return Isa::kAvx512;
  if (value == "neon") return Isa::kNeon;
  if (value == "native") return detected_isa();
  std::ostringstream msg;
  msg << "ADAQP_ISA must be one of scalar|sse42|avx2|avx512|neon|native; "
         "got \""
      << std::string(value) << "\"";
  throw std::runtime_error(msg.str());
}

Isa detected_isa() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
    return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
  return Isa::kScalar;
#elif defined(__aarch64__)
  return Isa::kNeon;  // NEON is baseline on aarch64
#else
  return Isa::kScalar;
#endif
}

bool isa_supported(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  switch (isa) {
    case Isa::kSse42: return __builtin_cpu_supports("sse4.2");
    case Isa::kAvx2: return __builtin_cpu_supports("avx2");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
    default: return false;
  }
#elif defined(__aarch64__)
  return isa == Isa::kNeon;
#else
  return false;
#endif
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2, Isa::kAvx512,
                  Isa::kNeon})
    if (isa_supported(isa)) out.push_back(isa);
  return out;
}

Isa active_isa() {
  const int ov = g_override.load(std::memory_order_acquire);
  if (ov >= 0) return static_cast<Isa>(ov);
  const auto value = env::text("ADAQP_ISA");
  if (!value) return detected_isa();
  const Isa isa = parse_isa(*value);
  if (!isa_supported(isa)) throw_unsupported(isa);
  return isa;
}

void set_isa_override(Isa isa) {
  if (!isa_supported(isa)) throw_unsupported(isa);
  g_override.store(static_cast<int>(isa), std::memory_order_release);
  g_active_table.store(nullptr, std::memory_order_release);
}

void clear_isa_override() {
  g_override.store(-1, std::memory_order_release);
  g_active_table.store(nullptr, std::memory_order_release);
}

IsaGuard::IsaGuard(Isa isa) {
  const int ov = g_override.load(std::memory_order_acquire);
  had_override_ = ov >= 0;
  prev_ = had_override_ ? static_cast<Isa>(ov) : Isa::kScalar;
  set_isa_override(isa);
}

IsaGuard::~IsaGuard() {
  if (had_override_) set_isa_override(prev_);
  else clear_isa_override();
}

const KernelTable& kernels() {
  const KernelTable* table = g_active_table.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  std::lock_guard<std::mutex> lock(g_resolve_mutex);
  table = g_active_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = merged_table(active_isa());
    g_active_table.store(table, std::memory_order_release);
  }
  return *table;
}

}  // namespace adaqp::simd
