// Demonstrates the adaptive bit-width assigner in isolation: how the
// bi-objective solve trades gradient variance against straggler time as λ
// sweeps from pure-time (0) to pure-variance (1), and how the minimax term
// squeezes straggler pairs while giving fast intra-machine pairs full width.
#include <cstdio>
#include <map>

#include "assign/bit_assigner.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/datasets.h"
#include "partition/partitioner.h"

using namespace adaqp;

int main() {
  const Dataset ds = make_dataset("products_sim", 42);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);
  Rng rng(7919 + 17);
  const auto part = make_partitioner("multilevel")->partition(ds.graph, 4, rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  std::printf("partitioned %s into 4: edge cut %zu, remote ratio %.2f\n\n",
              ds.spec.name.c_str(), edge_cut(ds.graph, part.part_of),
              dist.remote_neighbor_ratio());

  // Trace ranges straight from the features (what the Assigner does with
  // layer-0 inputs during training).
  const auto locals = scatter_to_devices(ds.features, dist);
  std::vector<std::vector<float>> ranges;
  for (const auto& m : locals) ranges.push_back(row_ranges_of(m));

  Table table({"lambda", "2-bit", "4-bit", "8-bit", "avg bits", "variance",
               "straggler Z (us)", "solve (ms)"});
  for (double lam : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    AssignerOptions opts;
    opts.group_size = 64;
    opts.lambda = lam;
    AssignReport report;
    const ExchangePlan plan =
        assign_bit_widths(dist, cluster, Aggregator::kGcn, Direction::kForward,
                          ranges, ds.spec.feature_dim, opts, &report);
    std::map<int, int> hist;
    double sum = 0.0;
    int count = 0;
    for (const auto& pd : plan.bits)
      for (const auto& pp : pd)
        for (int b : pp) {
          hist[b]++;
          sum += b;
          ++count;
        }
    table.add_row({Table::fmt(lam, 2), std::to_string(hist[2]),
                   std::to_string(hist[4]), std::to_string(hist[8]),
                   Table::fmt(sum / count, 2),
                   Table::fmt(report.total_variance, 4),
                   Table::fmt(report.total_z * 1e6, 1),
                   Table::fmt(report.solve_wall_seconds * 1e3, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading the table: λ=0 minimizes the per-round straggler time (the\n"
      "slow inter-machine pairs drop to 2 bits; fast intra-machine pairs\n"
      "keep 8 bits for free), λ=1 minimizes quantization variance (all 8),\n"
      "and intermediate λ trades one for the other — paper Eqn. 12.\n");
  return 0;
}
