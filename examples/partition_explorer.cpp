// Compares the graph partitioners on every benchmark dataset: edge cut,
// balance, remote-neighbor ratio, and the central/marginal node split that
// drives AdaQP's computation-communication overlap. This is the substrate
// the paper delegates to METIS.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "data/datasets.h"
#include "dist/dist_graph.h"
#include "partition/partitioner.h"

using namespace adaqp;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  Table table({"Dataset", "Partitioner", "Edge Cut", "Cut %", "Balance",
               "Remote Ratio", "Central %"});
  for (const auto& spec : all_benchmark_specs()) {
    Rng data_rng(42 ^ std::hash<std::string>{}(spec.name));
    const Dataset ds = make_dataset(spec, data_rng);
    for (const char* name : {"multilevel", "fennel", "range", "random"}) {
      Rng rng(99);
      const auto part = make_partitioner(name)->partition(ds.graph, k, rng);
      const auto dist = build_dist_graph(ds.graph, part);
      std::size_t central = 0, owned = 0;
      for (const auto& dev : dist.devices) {
        central += dev.central_nodes.size();
        owned += dev.num_owned;
      }
      const auto cut = edge_cut(ds.graph, part.part_of);
      table.add_row(
          {spec.name, name, std::to_string(cut),
           Table::pct(static_cast<double>(cut) /
                      ds.graph.num_undirected_edges()),
           Table::fmt(part.balance_factor(), 3),
           Table::pct(dist.remote_neighbor_ratio()),
           Table::pct(static_cast<double>(central) / owned)});
    }
  }
  std::printf("%d-way partitioning of every benchmark dataset:\n\n%s", k,
              table.to_string().c_str());
  std::printf("\nLower cut -> fewer marginal nodes -> more computation can\n"
              "overlap with communication (paper §3.4). Note: the synthetic\n"
              "generators lay blocks out contiguously, so the trivial range\n"
              "partitioner is unrealistically strong here; on graphs without\n"
              "index locality (shuffled ids, R-MAT) multilevel dominates.\n");
  return 0;
}
