// End-to-end comparison of every training method on one dataset.
//
// Usage: distributed_training [dataset] [setting] [model] [epochs]
//   dataset: reddit_sim | yelp_sim | products_sim | amazon_sim
//   setting: 2M-1D | 2M-2D | 2M-4D | 6M-4D ...  (machines x devices)
//   model:   gcn | sage
// Example: ./build/examples/distributed_training amazon_sim 2M-4D sage 80
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/trainer.h"

using namespace adaqp;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "products_sim";
  const std::string setting = argc > 2 ? argv[2] : "2M-2D";
  const std::string model = argc > 3 ? argv[3] : "gcn";
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 50;

  const int machines = std::stoi(setting.substr(0, setting.find('M')));
  const auto d_pos = setting.find('-') + 1;
  const int devs = std::stoi(setting.substr(d_pos, setting.find('D') - d_pos));
  const ClusterSpec cluster = ClusterSpec::machines(machines, devs);
  const Aggregator agg =
      model == "sage" ? Aggregator::kSageMean : Aggregator::kGcn;

  const Dataset dataset = make_dataset(dataset_name, 42);
  std::printf("dataset %s: %zu nodes / %zu edges; cluster %s (%d devices); "
              "model %s; %d epochs\n\n",
              dataset_name.c_str(), dataset.num_nodes(),
              dataset.graph.num_undirected_edges(), setting.c_str(),
              cluster.num_devices(), model.c_str(), epochs);

  Table table({"Method", "Final Acc(%)", "Epoch (ms)", "Speedup", "Comm (MB)",
               "Wall-clock (s)"});
  double vanilla_epoch = 0.0;
  for (Method m : {Method::kVanilla, Method::kAdaQP, Method::kAdaQPUniform,
                   Method::kPipeGCN, Method::kSancus}) {
    TrainOptions opts;
    opts.method = m;
    opts.epochs = epochs;
    opts.seed = 7;
    opts.reassign_period = 25;
    opts.eval_every_epoch = false;
    opts.verbose = false;
    opts.eval_every_epoch = true;  // final_val_acc comes from the last epoch
    RunResult r = run_training(dataset, cluster, agg, opts);
    if (m == Method::kVanilla) vanilla_epoch = r.avg_epoch_seconds;
    table.add_row({r.method, Table::fmt(r.final_val_acc * 100, 2),
                   Table::fmt(r.avg_epoch_seconds * 1e3, 3),
                   Table::fmt(vanilla_epoch / r.avg_epoch_seconds, 2) + "x",
                   Table::fmt(r.total_comm_bytes / 1e6, 1),
                   Table::fmt(r.wall_clock_seconds, 3)});
    std::printf("finished %s\n", r.method.c_str());
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nTimes are simulated cluster seconds (see DESIGN.md); the\n"
              "numerics are exact — every message passed through the real\n"
              "quantization codec.\n");
  return 0;
}
