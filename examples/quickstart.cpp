// Quickstart: train a 3-layer GCN on a synthetic ogbn-products analogue over
// a simulated 2-machine x 2-GPU cluster, comparing Vanilla full-precision
// training against AdaQP's adaptive quantization + parallelization.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "comm/cluster.h"
#include "core/trainer.h"
#include "data/datasets.h"

using namespace adaqp;

int main() {
  // 1. Materialize a dataset (synthetic analogue of ogbn-products).
  Dataset dataset = make_dataset("products_sim", /*seed=*/42);
  std::printf("dataset %s: %zu nodes, %zu undirected edges, %zu features, "
              "%zu classes\n",
              dataset.spec.name.c_str(), dataset.num_nodes(),
              dataset.graph.num_undirected_edges(), dataset.spec.feature_dim,
              dataset.num_classes());

  // 2. Describe the simulated cluster: 2 machines x 2 devices.
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);

  // 3. Train with Vanilla and with AdaQP; identical seeds and hyper-params.
  TrainOptions opts;
  opts.epochs = 60;
  opts.seed = 7;
  opts.reassign_period = 25;

  opts.method = Method::kVanilla;
  RunResult vanilla = run_training(dataset, cluster, Aggregator::kGcn, opts);

  opts.method = Method::kAdaQP;
  RunResult adaqp = run_training(dataset, cluster, Aggregator::kGcn, opts);

  // 4. Report the paper's headline quantities.
  std::printf("\n%-10s %12s %16s %14s\n", "method", "val acc", "epoch time (s)",
              "speedup");
  std::printf("%-10s %12.4f %16.4f %14s\n", vanilla.method.c_str(),
              vanilla.final_val_acc, vanilla.avg_epoch_seconds, "1.00x");
  std::printf("%-10s %12.4f %16.4f %13.2fx\n", adaqp.method.c_str(),
              adaqp.final_val_acc, adaqp.avg_epoch_seconds,
              vanilla.avg_epoch_seconds / adaqp.avg_epoch_seconds);
  std::printf("\nAdaQP comm bytes: %.1f MB vs Vanilla %.1f MB (%.1f%% saved)\n",
              adaqp.total_comm_bytes / 1e6, vanilla.total_comm_bytes / 1e6,
              100.0 * (1.0 - static_cast<double>(adaqp.total_comm_bytes) /
                                 vanilla.total_comm_bytes));
  return 0;
}
