// Multi-process determinism probe (docs/TRANSPORT.md): runs every training
// method on a fixed small dataset and prints the exact bit patterns of the
// final loss/accuracies plus the transport delivery digest, one line per
// method, on stdout. Under the replicated-compute model every rank — and a
// single-process loopback run — must print byte-identical stdout, which is
// what scripts/run_multiproc.sh diffs.
//
// Transport comes from the environment: ADAQP_TRANSPORT=tcp with
// ADAQP_TP_RANK / ADAQP_TP_NPROCS / ADAQP_TP_BASE_PORT set per rank, or
// loopback (default) for the baseline. Rank-specific chatter goes to stderr
// so stdout stays diffable.
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/trainer.h"
#include "transport/transport.h"

using namespace adaqp;

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.name = "multiproc_probe";
  spec.num_nodes = 600;
  spec.avg_degree = 8.0;
  spec.feature_dim = 12;
  spec.num_classes = 5;
  spec.intra_prob = 0.8;
  Rng ds_rng(33);
  const Dataset ds = make_dataset(spec, ds_rng);

  Rng part_rng(4242);
  const auto part = MultilevelPartitioner().partition(ds.graph, 4, part_rng);
  const DistGraph dist = build_dist_graph(ds.graph, part);
  const ClusterSpec cluster = ClusterSpec::machines(2, 2);

  ModelConfig mc;
  mc.aggregator = Aggregator::kGcn;
  mc.in_dim = ds.spec.feature_dim;
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  mc.num_layers = 2;
  mc.dropout = 0.3f;

  transport::Transport& tp = transport::active();
  std::fprintf(stderr, "[multiproc_training] transport=%s\n", tp.name());

  for (Method m : {Method::kVanilla, Method::kAdaQP, Method::kAdaQPUniform,
                   Method::kPipeGCN, Method::kSancus}) {
    TrainOptions opts;
    opts.method = m;
    opts.epochs = 8;
    opts.seed = 21;
    opts.reassign_period = 4;
    opts.verbose = false;
    const transport::TransportStats before = tp.stats();
    RunResult r;
    {
      DistTrainer trainer(ds, dist, cluster, mc, opts);
      r = trainer.run();
    }
    // XOR digests fold incrementally, so before^after isolates this method.
    const transport::TransportStats after = tp.stats();
    std::printf("method=%s loss=%016" PRIx64 " val=%016" PRIx64
                " test=%016" PRIx64 " comm=%zu frames=%" PRIu64
                " bytes=%" PRIu64 " digest=%016" PRIx64 "\n",
                r.method.c_str(), bits_of(r.epochs.back().train_loss),
                bits_of(r.final_val_acc), bits_of(r.final_test_acc),
                r.total_comm_bytes, after.frames_delivered - before.frames_delivered,
                after.bytes_delivered - before.bytes_delivered,
                before.digest ^ after.digest);
    std::fflush(stdout);
  }
  return 0;
}
